"""Event-loop TCP accept/dispatch base: the C10K-capable Endpoint.

:class:`AsyncEndpoint` is the asyncio twin of
:class:`~repro.transport.endpoint.Endpoint`: one ``asyncio.Server``
(instead of an accept thread), one connection *task* (instead of a
thread) per accepted socket, and the same ``MessageType -> handler``
dispatch table with the same error contract (unknown type ->
``bad-message`` and the connection survives; ``XdrError`` escaping a
handler -> ``bad-request``; protocol/socket failure -> close).

The lifecycle surface is deliberately synchronous -- ``start()`` /
``stop()`` / ``with`` -- so subclasses and callers of the threaded
endpoint port over unchanged: the endpoint owns a private
:class:`~repro.transport.loopbridge.LoopThread` and drives its loop
from whatever thread the caller is on.

Handlers may be either coroutines (awaited on the loop with the raw
:class:`~repro.transport.aiochannel.AsyncChannel`) or plain callables
(the entire existing :class:`~repro.server.NinfServer` handler set):
sync handlers run in a bounded thread pool via ``run_in_executor`` and
receive a :class:`~repro.transport.loopbridge.FacadeChannel`, so they
may block (dedup waits, executor admission) and may send replies from
*other* threads (executor completion callbacks) without ever stalling
the loop.

Observability: ``ninf_endpoint_connections_accepted_total`` (as on the
threaded endpoint) plus the event-loop vitals
``ninf_server_connections_open`` (gauge) and
``ninf_server_loop_lag_seconds`` (histogram, sampled by a sleep-drift
monitor task) -- see OBSERVABILITY.md.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from typing import Callable, Optional

from repro.obs import MetricsRegistry, names
from repro.protocol.errors import ConnectionClosed, ProtocolError
from repro.protocol.messages import MessageType
from repro.transport.aiochannel import AsyncChannel, AsyncFaultyChannel
from repro.transport.faults import FaultPlan
from repro.transport.loopbridge import FacadeChannel, LoopThread
from repro.xdr import XdrDecoder, XdrEncoder, XdrError

__all__ = ["AsyncEndpoint"]

Handler = Callable[..., object]

#: Sub-millisecond to one-second lag buckets: loop lag is healthy in
#: the tens of microseconds and pathological past ~100 ms.
_LAG_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                0.05, 0.1, 0.25, 0.5, 1.0)


class AsyncEndpoint:
    """An event-loop TCP request/reply endpoint with a handler registry.

    Parameters match :class:`~repro.transport.endpoint.Endpoint`
    (``host``/``port``/``name``/``fault_plan``/``metrics``), plus:

    backlog:
        Explicit listen backlog.  Bursty C10K dials overflow the
        kernel's default accept queue; refused dials surface client-side
        in ``ninf_pool_dials_refused_total``.
    handler_threads:
        Size of the thread pool that runs *sync* handlers.  Blocking
        handlers occupy a worker, never the loop.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 name: str = "aio-endpoint",
                 fault_plan: Optional[FaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 backlog: int = 512, handler_threads: int = 32) -> None:
        self.name = name
        self.fault_plan = fault_plan
        self.backlog = backlog
        self.handler_threads = handler_threads
        self._bind_host = host
        self._bind_port = port
        self._runner: Optional[LoopThread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._sockname: Optional[tuple[str, int]] = None
        self._handler_pool: Optional[
            concurrent.futures.ThreadPoolExecutor] = None
        self._running = False
        # Guards the lifecycle state above; same discipline as the
        # threaded Endpoint (start/stop race from any thread, loop-side
        # code reads _running unlocked by design).
        self._lock = threading.Lock()
        self._handlers: dict[int, Handler] = {}
        # Loop-affine state: only the loop thread touches these.
        self._conn_tasks: set[asyncio.Task] = set()
        self._lag_task: Optional[asyncio.Task] = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if fault_plan is not None and fault_plan.metrics is None:
            fault_plan.metrics = self.metrics
        self._accepted = self.metrics.counter(
            names.ENDPOINT_CONNECTIONS_ACCEPTED,
            "TCP connections accepted by this endpoint")
        self._open_gauge = self.metrics.gauge(
            names.SERVER_CONNECTIONS_OPEN,
            "Connections currently being served")
        self._loop_lag = self.metrics.histogram(
            names.SERVER_LOOP_LAG,
            "Event-loop scheduling lag sampled by the drift monitor",
            buckets=_LAG_BUCKETS)
        self.register_handler(MessageType.PING, self._handle_ping)
        self.register_handler(MessageType.STATS, self._handle_stats)

    # -- handler registry ---------------------------------------------------

    def register_handler(self, msg_type: int, handler: Handler) -> None:
        """Route frames of ``msg_type`` to ``handler(channel, payload)``.

        A coroutine function is awaited on the loop with the
        :class:`AsyncChannel`; a plain callable runs in the handler
        thread pool with a :class:`FacadeChannel`.
        """
        self._handlers[int(msg_type)] = handler

    async def _handle_ping(self, channel: AsyncChannel,
                           payload: bytes) -> None:
        await channel.send(MessageType.PONG, payload)

    async def _handle_stats(self, channel: AsyncChannel,
                            payload: bytes) -> None:
        """The STATS op: reply with a snapshot of this endpoint's
        registry, JSON (default) or Prometheus text (``"prom"``)."""
        fmt = "json"
        if payload:
            fmt = XdrDecoder(payload).unpack_string()
        # Rendering walks the whole registry under its lock -- a
        # contended, O(series) operation that must not stall the accept
        # loop, so it runs on the default executor.
        loop = asyncio.get_running_loop()
        if fmt == "prom":
            text = await loop.run_in_executor(
                None, self.metrics.render_prometheus)
        elif fmt == "json":
            snapshot = await loop.run_in_executor(
                None, self.metrics.snapshot)
            text = json.dumps(snapshot, sort_keys=True)
        else:
            await channel.send_error("bad-request",
                                     f"unknown stats format {fmt!r}")
            return
        enc = XdrEncoder()
        enc.pack_string(fmt)
        enc.pack_string(text)
        await channel.send(MessageType.STATS_REPLY, enc.getvalue())

    @property
    def connections_accepted(self) -> int:
        """Connections accepted over this endpoint's lifetime
        (registry-backed: ``ninf_endpoint_connections_accepted_total``)."""
        return int(self._accepted.value())

    @property
    def connections_open(self) -> int:
        """Connections currently being served (registry-backed gauge
        ``ninf_server_connections_open``)."""
        return int(self._open_gauge.value())

    # -- lifecycle ----------------------------------------------------------

    def on_start(self) -> None:
        """Hook: runs before the listener accepts its first connection."""

    def on_stop(self) -> None:
        """Hook: runs after the listener closes, while the loop (and the
        accepted connections) are still alive -- in-flight completion
        callbacks can still deliver replies."""

    def start(self) -> "AsyncEndpoint":
        """Bind, listen, and start serving on a private loop thread."""
        with self._lock:
            if self._running:
                raise RuntimeError(f"{self.name} already started")
            self._running = True
        runner = LoopThread(name=f"{self.name}-loop")
        try:
            server, sockname = runner.run(self._open_listener())
        except BaseException:
            # A failed bind (port in use, bad address) must not leak
            # the loop thread or leave the endpoint claiming to run.
            runner.stop()
            with self._lock:
                self._running = False
            raise
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.handler_threads,
            thread_name_prefix=f"{self.name}-handler")
        with self._lock:
            self._runner = runner
            self._server = server
            self._sockname = sockname
            self._handler_pool = pool
        # Same ordering contract as the threaded Endpoint: the listener
        # exists, on_start() machinery (executor pool, monitors) comes
        # up, and only then does the first accept happen.
        self.on_start()
        runner.run(self._begin_serving(server))
        return self

    def stop(self) -> None:
        """Shut down: close the listener, run :meth:`on_stop`, then tear
        down connection tasks and the loop."""
        with self._lock:
            self._running = False
            runner = self._runner
            self._runner = None
            server = self._server
            self._server = None
            self._sockname = None
            pool = self._handler_pool
            self._handler_pool = None
        if runner is not None and server is not None:
            try:
                runner.run(self._close_listener(server), timeout=5.0)
            except (OSError, concurrent.futures.TimeoutError):
                pass
        # on_stop drains subclass machinery (the PE executor) while the
        # loop still runs: queued jobs complete or abort and their
        # replies travel the still-open connections.
        self.on_stop()
        if runner is not None:
            try:
                runner.run(self._cancel_connections(), timeout=5.0)
            except (OSError, concurrent.futures.TimeoutError):
                pass
            runner.stop()
        if pool is not None:
            pool.shutdown(wait=False)

    def __enter__(self) -> "AsyncEndpoint":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        with self._lock:
            sockname = self._sockname
        if sockname is None:
            raise RuntimeError(f"{self.name} is not running")
        return sockname

    # -- loop-side lifecycle -------------------------------------------------

    async def _open_listener(self) -> tuple[asyncio.Server, tuple[str, int]]:
        server = await asyncio.start_server(
            self._client_connected, self._bind_host, self._bind_port,
            backlog=self.backlog, reuse_address=True, start_serving=False)
        return server, server.sockets[0].getsockname()[:2]

    async def _begin_serving(self, server: asyncio.AbstractServer) -> None:
        self._lag_task = asyncio.get_running_loop().create_task(
            self._monitor_lag())
        await server.start_serving()

    async def _close_listener(self, server: asyncio.AbstractServer) -> None:
        # close() alone: on 3.12+ wait_closed() also waits for every
        # accepted connection to finish, which would deadlock against
        # clients holding pooled connections open.
        server.close()

    async def _cancel_connections(self) -> None:
        # One tick first: a connection accepted just before the
        # listener closed may have its _client_connected callback
        # queued but not yet run -- let it register (and see _running
        # False) so it is torn down here, not leaked to GC.
        await asyncio.sleep(0)
        if self._lag_task is not None:
            self._lag_task.cancel()
            self._lag_task = None
        tasks = [task for task in self._conn_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.wait(tasks, timeout=2.0)
            # channel.close() in the tasks' finally blocks only
            # *schedules* the transport teardown (call_soon); yield two
            # ticks so the sockets actually close -- peers must see FIN
            # before the loop stops, not at process exit.
            await asyncio.sleep(0)
            await asyncio.sleep(0)

    async def _monitor_lag(self, interval: float = 0.05) -> None:
        """Observe scheduling lag: how late a timed sleep wakes up."""
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            self._loop_lag.observe(max(0.0, loop.time() - before - interval))

    # -- accept / dispatch --------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if not self._running:
            writer.close()
            return
        self._accepted.inc()
        if self.fault_plan is not None:
            channel: AsyncChannel = AsyncFaultyChannel(
                reader, writer, self.fault_plan)
        else:
            channel = AsyncChannel(reader, writer)
        channel.metrics = self.metrics
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._open_gauge.inc()
        try:
            await self._serve_connection(channel)
        finally:
            self._open_gauge.dec()
            self._conn_tasks.discard(task)

    async def _serve_connection(self, channel: AsyncChannel) -> None:
        # Captured once: stop() nulls the attributes concurrently, but a
        # connection that is already being served keeps its bridge.
        runner = self._runner
        pool = self._handler_pool
        facade: Optional[FacadeChannel] = None
        try:
            while True:
                try:
                    msg_type, payload = await channel.recv()
                except ConnectionClosed:
                    return
                handler = self._handlers.get(msg_type)
                if handler is None:
                    await channel.send_error(
                        "bad-message", f"unexpected message type {msg_type}"
                    )
                    continue
                try:
                    if asyncio.iscoroutinefunction(handler):
                        await handler(channel, payload)
                    else:
                        if facade is None:
                            facade = FacadeChannel(channel, runner)
                        await asyncio.get_running_loop().run_in_executor(
                            pool, handler, facade, payload)
                except XdrError as exc:
                    await channel.send_error("bad-request", str(exc))
        # RuntimeError: the handler pool/loop shut down mid-dispatch --
        # the stop() race, same terminal outcome as a socket error.
        except (ProtocolError, OSError, RuntimeError):
            pass
        finally:
            channel.close()
