"""The asyncio twin of :class:`~repro.transport.channel.Channel`.

:class:`AsyncChannel` speaks the identical wire protocol (via
:mod:`repro.protocol.aframing`) with the identical deadline and error
semantics, but multiplexes thousands of connections on one event loop
instead of parking a thread per socket.  Within a loop, coroutine
interleaving replaces thread preemption, so the channel's send/recv/rpc
critical sections are :class:`asyncio.Lock` instances -- never
``threading`` locks, which would deadlock the loop (ninf-lint's
``await-under-lock`` rule enforces this project-wide).

:class:`AsyncFaultyChannel` reproduces
:class:`~repro.transport.faults.FaultyChannel` exactly: same
:class:`~repro.transport.faults.FaultPlan` draw sequence (one
``random()`` per clean op, three more per faulting op), same observable
outcomes per kind, so a chaos seed produces the same schedule whichever
transport runs under it.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Union

from repro.protocol.aframing import read_frame, write_frame
from repro.protocol.errors import ConnectionClosed, ProtocolError, \
    RemoteError, ServerBusy, TimeoutError
from repro.protocol.framing import encode_frame
from repro.protocol.messages import BusyReply, ErrorReply, MessageType
from repro.transport.channel import _DEFAULT, _Unset
from repro.transport.faults import CORRUPT, DELAY, DROP_PRE, REFUSE_DIAL, \
    TRUNCATE, FaultPlan, _corrupt
from repro.xdr import XdrDecoder, XdrEncoder

__all__ = ["AsyncChannel", "AsyncFaultyChannel", "aconnect",
           "aconnect_with_faults"]


class AsyncChannel:
    """One framed connection on an event loop, Channel-equivalent.

    Owns an :class:`asyncio.StreamReader`/``StreamWriter`` pair and
    applies the channel-default ``timeout`` to every operation unless a
    call passes its own (the same ``_DEFAULT`` sentinel protocol as the
    sync :class:`~repro.transport.channel.Channel`).  All methods must
    run on the loop that created the streams; cross-thread use goes
    through the sync facade (:mod:`repro.transport.loopbridge`).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 timeout: Optional[float] = None,
                 remote: Optional[tuple[str, int]] = None) -> None:
        self.reader = reader
        self.writer = writer
        self.timeout = timeout
        self.remote = remote
        self.metrics = None
        self._send_lock = asyncio.Lock()
        self._recv_lock = asyncio.Lock()
        self._rpc_lock = asyncio.Lock()
        self._closed = False
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                import socket as _socket

                sock.setsockopt(_socket.IPPROTO_TCP,
                                _socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not a TCP socket -- fine

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drop the transport (idempotent, synchronous, loop-affine)."""
        self._closed = True
        try:
            self.writer.close()
        except (OSError, RuntimeError):
            pass

    async def wait_closed(self) -> None:
        """Await the transport teardown after :meth:`close`."""
        try:
            await self.writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    async def __aenter__(self) -> "AsyncChannel":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()
        await self.wait_closed()

    def fileno(self) -> int:
        """The underlying socket's file descriptor (for diagnostics)."""
        sock = self.writer.get_extra_info("socket")
        if sock is None:
            raise OSError("transport has no socket")
        return sock.fileno()

    def healthy(self) -> bool:
        """Whether an *idle* channel is still usable for a request.

        The loop eagerly drains readable bytes into the stream buffer,
        so the sync channel's zero-timeout ``select`` probe translates
        to: not closed, no EOF seen, and nothing buffered (an idle
        request/reply channel owes us no bytes; anything pending means
        the peer closed or broke protocol).
        """
        if self._closed or self.reader.at_eof():
            return False
        return not getattr(self.reader, "_buffer", b"")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<AsyncChannel {self.remote or ''} {state}>"

    # -- framed I/O ---------------------------------------------------------

    def _resolve(self, timeout: Union[None, float, _Unset]) -> Optional[float]:
        return self.timeout if isinstance(timeout, _Unset) else timeout

    def _note_io(self, direction: str, payload_len: int) -> None:
        """Record one framed exchange into the attached registry."""
        registry = self.metrics
        if registry is None:
            return
        from repro.obs import names
        from repro.protocol.framing import HEADER

        nbytes = HEADER.size + payload_len
        if direction == "sent":
            registry.counter(names.TRANSPORT_BYTES_SENT,
                             "Framed bytes written, header included"
                             ).inc(nbytes)
            registry.counter(names.TRANSPORT_FRAMES_SENT,
                             "Frames written").inc()
        else:
            registry.counter(names.TRANSPORT_BYTES_RECEIVED,
                             "Framed bytes read, header included"
                             ).inc(nbytes)
            registry.counter(names.TRANSPORT_FRAMES_RECEIVED,
                             "Frames read").inc()

    def _check_open(self) -> None:
        # Same observable as the sync channel, where I/O on a locally
        # closed socket raises EBADF: local close -> OSError, only a
        # *peer* close reads as ConnectionClosed.
        if self._closed:
            raise OSError("I/O operation on closed channel")

    async def send(self, msg_type: int, payload: bytes = b"",
                   timeout: Union[None, float, _Unset] = _DEFAULT) -> None:
        """Write one frame; safe to call from multiple tasks."""
        self._check_open()
        async with self._send_lock:
            await write_frame(self.writer, msg_type, payload,
                              timeout=self._resolve(timeout))
        self._note_io("sent", len(payload))

    async def recv(self, timeout: Union[None, float, _Unset] = _DEFAULT
                   ) -> tuple[int, bytes]:
        """Read one frame as ``(msg_type, payload)``."""
        self._check_open()
        async with self._recv_lock:
            msg_type, payload = await read_frame(
                self.reader, timeout=self._resolve(timeout))
        self._note_io("received", len(payload))
        return msg_type, payload

    async def request(self, msg_type: int, payload: bytes = b"",
                      expect: Optional[int] = None,
                      timeout: Union[None, float, _Unset] = _DEFAULT
                      ) -> tuple[int, bytes]:
        """One send + one recv, atomically with respect to other tasks.

        Reply decoding matches :meth:`Channel.request`: ``ERROR`` ->
        :class:`RemoteError`, ``BUSY`` -> :class:`ServerBusy`, and an
        ``expect`` mismatch -> :class:`ProtocolError`.
        """
        async with self._rpc_lock:
            await self.send(msg_type, payload, timeout=timeout)
            reply_type, reply = await self.recv(timeout=timeout)
        if reply_type == MessageType.ERROR:
            err = ErrorReply.decode(XdrDecoder(reply))
            raise RemoteError(err.code, err.message)
        if reply_type == MessageType.BUSY:
            busy = BusyReply.decode(XdrDecoder(reply))
            raise ServerBusy(busy.reason, retry_after=busy.retry_after)
        if expect is not None and reply_type != expect:
            raise ProtocolError(f"expected message {expect}, got {reply_type}")
        return reply_type, reply

    async def send_error(self, code: str, message: str) -> None:
        """Reply with a well-formed ``ErrorReply`` frame (server side)."""
        enc = XdrEncoder()
        ErrorReply(code=code, message=message).encode(enc)
        await self.send(MessageType.ERROR, enc.getvalue())


async def aconnect(host: str, port: int, timeout: Optional[float] = None,
                   connect_timeout: Optional[float] = None) -> AsyncChannel:
    """Dial ``host:port`` on the running loop; the async ``connect``.

    ``connect_timeout`` bounds the TCP handshake only (defaulting to
    ``timeout``); ``timeout`` becomes the channel's per-operation
    default.  Handshake expiry raises the repro
    :class:`~repro.protocol.errors.TimeoutError`, never a bare
    ``asyncio.TimeoutError``.
    """
    budget = timeout if connect_timeout is None else connect_timeout
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), budget)
    except asyncio.TimeoutError:
        raise TimeoutError(
            f"connect to {host}:{port} timed out after {budget}s") from None
    try:
        return AsyncChannel(reader, writer, timeout=timeout,
                            remote=(host, port))
    except BaseException:
        # Nothing owns the transport until construction succeeds.
        writer.close()
        raise


class AsyncFaultyChannel(AsyncChannel):
    """An :class:`AsyncChannel` whose I/O consults a fault plan.

    Observable semantics are identical to the sync
    :class:`~repro.transport.faults.FaultyChannel`, kind for kind:
    delay sleeps then proceeds, truncate writes a prefix and raises
    :class:`ConnectionClosed`, corrupt flips one byte and "succeeds",
    drop_pre raises before the operation (``ConnectionResetError`` on
    send, :class:`ConnectionClosed` on recv), drop_post delivers then
    drops.  The plan's draw sequence is shared, so chaos seeds replay
    the same schedule on either transport.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, plan: FaultPlan,
                 timeout: Optional[float] = None,
                 remote: Optional[tuple[str, int]] = None) -> None:
        super().__init__(reader, writer, timeout=timeout, remote=remote)
        self.plan = plan

    async def send(self, msg_type: int, payload: bytes = b"",
                   timeout: Union[None, float, _Unset] = _DEFAULT) -> None:
        """Send one frame, subject to the plan's send-applicable faults."""
        event = self.plan.draw("send")
        if event is None:
            return await super().send(msg_type, payload, timeout=timeout)
        if event.kind == DELAY:
            await asyncio.sleep(event.delay)
            return await super().send(msg_type, payload, timeout=timeout)
        if event.kind == DROP_PRE:
            self.close()
            raise ConnectionResetError(
                f"[fault #{event.seq}] connection dropped before send"
            )
        frame = encode_frame(msg_type, payload)
        if event.kind == TRUNCATE:
            cut = max(1, min(len(frame) - 1, int(event.ratio * len(frame))))
            async with self._send_lock:
                self.writer.write(frame[:cut])
                await self._drain()
            self.close()
            raise ConnectionClosed(
                f"[fault #{event.seq}] frame truncated after "
                f"{cut}/{len(frame)} bytes"
            )
        if event.kind == CORRUPT:
            frame = _corrupt(frame, event.ratio)
            async with self._send_lock:
                self.writer.write(frame)
                await self._drain()
            return None
        # DROP_POST: deliver, then kill the connection.
        async with self._send_lock:
            self.writer.write(frame)
            await self._drain()
        self.close()
        return None

    async def _drain(self) -> None:
        try:
            await self.writer.drain()
        except (OSError, ConnectionError):
            pass  # injected writes are best-effort, like raw sendall

    async def recv(self, timeout: Union[None, float, _Unset] = _DEFAULT
                   ) -> tuple[int, bytes]:
        """Receive one frame, subject to delay/drop faults."""
        event = self.plan.draw("recv")
        if event is not None:
            if event.kind == DROP_PRE:
                self.close()
                raise ConnectionClosed(
                    f"[fault #{event.seq}] connection dropped before recv"
                )
            await asyncio.sleep(event.delay)
        return await super().recv(timeout=timeout)


async def aconnect_with_faults(plan: FaultPlan, host: str, port: int,
                               timeout: Optional[float] = None,
                               connect_timeout: Optional[float] = None
                               ) -> AsyncFaultyChannel:
    """The async :meth:`FaultPlan.connector`: dial faults + faulty channel."""
    event = plan.draw("dial")
    if event is not None:
        if event.kind == REFUSE_DIAL:
            raise ConnectionRefusedError(
                f"[fault #{event.seq}] dial to {host}:{port} refused"
            )
        await asyncio.sleep(event.delay)
    channel = await aconnect(host, port, timeout=timeout,
                             connect_timeout=connect_timeout)
    faulty = AsyncFaultyChannel(channel.reader, channel.writer, plan,
                                timeout=channel.timeout,
                                remote=channel.remote)
    return faulty
