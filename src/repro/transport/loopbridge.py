"""Sync-facade plumbing: drive an event loop from blocking code.

The asyncio rebuild keeps every existing synchronous surface --
:class:`~repro.client.NinfClient`, the pooled
:class:`~repro.transport.pool.ConnectionPool`, server handlers running
in executor threads -- as thin facades over coroutines.  Two pieces
make that work:

- :class:`LoopThread` -- one daemon thread running one event loop
  forever; blocking callers submit coroutines with
  ``asyncio.run_coroutine_threadsafe`` and wait on the returned
  concurrent future.  The loop-ownership rule (DESIGN.md §3.6): the
  loop thread never blocks, and no coroutine is ever awaited from two
  loops.
- :class:`FacadeChannel` -- the synchronous
  :class:`~repro.transport.channel.Channel` surface (``send`` /
  ``recv`` / ``request`` / ``healthy`` / ``close``...) wrapped around
  an :class:`~repro.transport.aiochannel.AsyncChannel` living on a
  :class:`LoopThread`.  Deadlines are enforced *inside* the coroutines
  (whole-frame semantics, :mod:`repro.protocol.aframing`), so the
  bridging future is waited without its own timeout; a dead or closing
  loop surfaces as :class:`OSError`, which every existing caller
  already treats as a burned connection.

Client facades share one process-wide :func:`shared_loop` (clients are
cheap, loops are not); each :class:`~repro.transport.aioendpoint.AsyncEndpoint`
owns a private :class:`LoopThread` so servers remain isolated and
stoppable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Callable, Coroutine, Optional, TYPE_CHECKING, Union

from repro.transport.channel import _DEFAULT, _Unset

if TYPE_CHECKING:  # annotations only -- aiochannel is imported lazily
    from repro.obs import MetricsRegistry
    from repro.transport.aiochannel import AsyncChannel
    from repro.transport.faults import FaultPlan

__all__ = ["FacadeChannel", "LoopThread", "facade_connect",
           "shared_loop"]


class LoopThread:
    """A daemon thread running a private event loop until stopped."""

    def __init__(self, name: str = "ninf-loop") -> None:
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name,
                                        daemon=True)
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            try:
                self._loop.close()
            except RuntimeError:
                pass

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def alive(self) -> bool:
        """Whether the loop thread is still running its loop."""
        return self._thread.is_alive() and not self._loop.is_closed()

    def run(self, coro: Coroutine[Any, Any, Any],
            timeout: Optional[float] = None) -> Any:
        """Run ``coro`` on the loop, block until it finishes.

        ``timeout`` bounds only the *wait* (the coroutine keeps running
        if it expires); the usual contract is that the coroutine bounds
        itself via frame deadlines and ``timeout`` stays ``None``.
        A stopped loop raises :class:`OSError` (a burned transport to
        every existing caller).
        """
        try:
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        except RuntimeError:
            coro.close()
            raise OSError("event loop is not running") from None
        try:
            return future.result(timeout)
        except concurrent.futures.CancelledError:
            raise OSError("event loop shut down mid-operation") from None

    def call_soon(self, callback: Callable[..., object],
                  *args: object) -> bool:
        """Schedule a plain callback; False when the loop is gone."""
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            return False
        return True

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
            self._thread.join(timeout=5.0)


_shared_lock = threading.Lock()
_shared: Optional[LoopThread] = None


def shared_loop() -> LoopThread:
    """The process-wide client-side loop thread (lazily created).

    Shared by every sync-facade :class:`~repro.client.NinfClient`; it
    is a daemon and is never stopped -- channels close individually,
    the loop dies with the process.
    """
    global _shared
    with _shared_lock:
        if _shared is None or not _shared.alive():
            _shared = LoopThread(name="ninf-client-loop")
        return _shared


def facade_connect(host: str, port: int, timeout: Optional[float] = None,
                   connect_timeout: Optional[float] = None,
                   fault_plan: Optional[FaultPlan] = None,
                   runner: Optional[LoopThread] = None) -> "FacadeChannel":
    """Dial an :class:`AsyncChannel` and wrap it for blocking callers.

    A drop-in for :func:`repro.transport.channel.connect` (and, with
    ``fault_plan``, for ``FaultPlan.connector``): the same signature the
    :class:`~repro.transport.pool.ConnectionPool` expects of its
    injectable ``connector``, which is what turns the existing
    synchronous client into an asyncio one without touching its call
    logic.  Dials on ``runner`` (default: the process-wide
    :func:`shared_loop`).
    """
    from repro.transport.aiochannel import aconnect, aconnect_with_faults

    runner = runner if runner is not None else shared_loop()
    if fault_plan is not None:
        coro = aconnect_with_faults(fault_plan, host, port, timeout=timeout,
                                    connect_timeout=connect_timeout)
    else:
        coro = aconnect(host, port, timeout=timeout,
                        connect_timeout=connect_timeout)
    return FacadeChannel(runner.run(coro), runner)


class FacadeChannel:
    """The sync :class:`Channel` surface over an ``AsyncChannel``.

    Every operation submits the matching coroutine to the owning
    :class:`LoopThread` and blocks on it; per-operation deadlines are
    enforced by the coroutine itself (whole-frame semantics), so
    expiry raises the same :class:`repro.protocol.errors.TimeoutError`
    the sync channel raises.  ``close`` flips the facade's flag
    immediately (pool bookkeeping relies on ``closed`` being current)
    and schedules the transport teardown on the loop.
    """

    def __init__(self, channel: AsyncChannel, runner: LoopThread) -> None:
        self._channel = channel
        self._runner = runner
        self._facade_closed = False

    # -- passthrough surface ------------------------------------------------

    @property
    def timeout(self) -> Optional[float]:
        return self._channel.timeout

    @timeout.setter
    def timeout(self, value: Optional[float]) -> None:
        self._channel.timeout = value

    @property
    def remote(self) -> Optional[tuple[str, int]]:
        return self._channel.remote

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        return self._channel.metrics

    @metrics.setter
    def metrics(self, registry: Optional[MetricsRegistry]) -> None:
        self._channel.metrics = registry

    @property
    def plan(self) -> Optional[FaultPlan]:
        """The fault plan, when wrapping an ``AsyncFaultyChannel``."""
        return getattr(self._channel, "plan", None)

    def fileno(self) -> int:
        """The wrapped transport's file descriptor (for diagnostics)."""
        return self._channel.fileno()

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._facade_closed or self._channel.closed

    def close(self) -> None:
        """Close (idempotent, non-blocking, callable from any thread)."""
        if self._facade_closed:
            return
        self._facade_closed = True
        if not self._runner.call_soon(self._channel.close):
            # Loop already gone: the transport dies with it; just make
            # sure the channel agrees it is unusable.
            self._channel._closed = True

    def healthy(self) -> bool:
        """Idle-channel health, evaluated against the stream state.

        The loop eagerly drains the fd, so peer death shows up as EOF
        (or stray buffered bytes) on the reader -- the same signal the
        sync channel's zero-timeout ``select`` reads off the socket.
        """
        return not self._facade_closed and self._channel.healthy()

    def __enter__(self) -> "FacadeChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<FacadeChannel {self.remote or ''} {state}>"

    # -- framed I/O ---------------------------------------------------------

    def send(self, msg_type: int, payload: bytes = b"",
             timeout: Union[None, float, _Unset] = _DEFAULT) -> None:
        """Write one frame (blocking facade of ``AsyncChannel.send``)."""
        self._runner.run(
            self._channel.send(msg_type, payload, timeout=timeout))

    def recv(self, timeout: Union[None, float, _Unset] = _DEFAULT
             ) -> tuple[int, bytes]:
        """Read one frame as ``(msg_type, payload)``."""
        return self._runner.run(self._channel.recv(timeout=timeout))

    def request(self, msg_type: int, payload: bytes = b"",
                expect: Optional[int] = None,
                timeout: Union[None, float, _Unset] = _DEFAULT
                ) -> tuple[int, bytes]:
        """One send + one recv with the sync channel's reply decoding."""
        return self._runner.run(
            self._channel.request(msg_type, payload, expect=expect,
                                  timeout=timeout))

    def send_error(self, code: str, message: str) -> None:
        """Reply with a well-formed ``ErrorReply`` frame (server side)."""
        self._runner.run(self._channel.send_error(code, message))
