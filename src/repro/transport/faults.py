"""Deterministic fault injection for the transport layer.

The reproduction's robustness claims (client retry, pool hygiene,
metaserver liveness) need *induced* failures, not just observed ones,
and they need the same failure sequence on every run.  Two pieces
provide that:

- :class:`FaultPlan` -- a seeded schedule of fault events.  Every
  transport operation (``dial``, ``send``, ``recv``) asks the plan
  whether it should fail; decisions come from one injected
  ``random.Random``, so the same seed driven through the same operation
  sequence produces a byte-identical schedule (``plan.schedule()``).
- :class:`FaultyChannel` -- a :class:`~repro.transport.channel.Channel`
  whose I/O consults a plan: it can delay a frame, truncate it
  mid-write, corrupt a byte (caught by the framing CRC on the other
  side), drop the connection before or after a send, or refuse a dial.

Plans are injectable at the three places a channel is born, so no call
site changes to come under test:

- :func:`FaultPlan.connector` wraps :func:`repro.transport.connect`
  (dial-time faults plus a faulty channel);
- ``ConnectionPool(fault_plan=...)`` uses that connector for every
  checkout;
- ``Endpoint(fault_plan=...)`` wraps each accepted connection, so
  *server-side* faults (a delayed or corrupted reply) are reachable
  too.

Emitted metrics (see OBSERVABILITY.md for the full conventions): a
plan attached to a pool or endpoint inherits its owner's
:class:`~repro.obs.MetricsRegistry` and counts every injected event in
``ninf_faults_injected_total{kind=...}``; the victims of those events
surface on the observing side as ``ninf_client_faults_seen_total``
(client) and retry activity in ``ninf_retry_*`` / ``ninf_client_retries_total``.
The plan's own ``events``/``injected``/``schedule()`` remain the
deterministic, seed-aligned record the chaos tests compare.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.protocol.errors import ConnectionClosed
from repro.protocol.framing import HEADER, encode_frame
from repro.transport.channel import _DEFAULT, Channel, _Unset, connect

__all__ = [
    "CORRUPT",
    "DELAY",
    "DROP_POST",
    "DROP_PRE",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultyChannel",
    "PartitionMap",
    "REFUSE_DIAL",
    "TRUNCATE",
]

#: A partition endpoint: a ``(host, port)`` address, a string label
#: (a plan's ``src`` identity), or ``"*"`` (every endpoint).
PartitionEnd = Union[str, tuple[str, int]]


class PartitionMap:
    """A deterministic, directional link-drop table (DESIGN.md §3.7).

    Unlike the probabilistic :class:`FaultPlan` schedule, a partition
    is *state*, not a draw: while the directed edge ``src -> dst`` is
    blocked, every dial and every frame on a matching channel fails,
    deterministically and without consuming any of the plan's RNG --
    so a chaos seed replays the identical fault schedule whether or
    not a partition is active.

    ``src`` is the label a :class:`FaultPlan` was constructed with
    (``FaultPlan(partitions=pmap, src="client-1")``); ``dst`` is the
    ``(host, port)`` being dialed (or the channel's ``remote``).
    ``"*"`` wildcards either side.  Directionality matters: blocking
    ``A -> B`` leaves ``B -> A`` intact, modelling the asymmetric
    (gray) partitions WAN links actually produce.

    Thread-safe; shared by every plan participating in a scenario.
    Drops are counted per edge in :attr:`drops` and, when the plan has
    a registry attached, in ``ninf_faults_partition_drops_total``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blocked: set[tuple[PartitionEnd, PartitionEnd]] = set()
        self.drops: dict[tuple[PartitionEnd, PartitionEnd], int] = {}

    def block(self, src: PartitionEnd, dst: PartitionEnd) -> None:
        """Drop the directed edge ``src -> dst``."""
        with self._lock:
            self._blocked.add((src, dst))

    def unblock(self, src: PartitionEnd, dst: PartitionEnd) -> None:
        """Heal the directed edge ``src -> dst`` (idempotent)."""
        with self._lock:
            self._blocked.discard((src, dst))

    def isolate(self, end: PartitionEnd) -> None:
        """Cut ``end`` off in both directions (``end -> *``, ``* -> end``)."""
        with self._lock:
            self._blocked.add((end, "*"))
            self._blocked.add(("*", end))

    def heal(self) -> None:
        """Remove every blocked edge."""
        with self._lock:
            self._blocked.clear()

    def is_blocked(self, src: PartitionEnd, dst: PartitionEnd) -> bool:
        """Whether traffic ``src -> dst`` is currently dropped."""
        with self._lock:
            if not self._blocked:
                return False
            return bool({(src, dst), (src, "*"), ("*", dst), ("*", "*")}
                        & self._blocked)

    def record_drop(self, src: PartitionEnd, dst: PartitionEnd) -> None:
        """Count one dropped operation on ``src -> dst``."""
        with self._lock:
            self.drops[(src, dst)] = self.drops.get((src, dst), 0) + 1

    @property
    def drops_total(self) -> int:
        with self._lock:
            return sum(self.drops.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"<PartitionMap blocked={sorted(map(str, self._blocked))} "
                    f"drops={sum(self.drops.values())}>")

# Fault kinds.  Names describe what happens to the operation they hit.
DELAY = "delay"              # sleep before the operation proceeds
TRUNCATE = "truncate"        # write only a prefix of the frame, then drop
CORRUPT = "corrupt"          # flip one byte of the frame on the wire
DROP_PRE = "drop_pre"        # drop the connection before the operation
DROP_POST = "drop_post"      # complete the write, then drop the connection
REFUSE_DIAL = "refuse_dial"  # the dial itself is refused

FAULT_KINDS = (DELAY, TRUNCATE, CORRUPT, DROP_PRE, DROP_POST, REFUSE_DIAL)

# Which kinds make sense at which operation.
_APPLICABLE = {
    "dial": (REFUSE_DIAL, DELAY),
    "send": (DELAY, TRUNCATE, CORRUPT, DROP_PRE, DROP_POST),
    "recv": (DELAY, DROP_PRE),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``ratio`` in [0, 1) positions byte-level faults (truncation point,
    corruption offset) relative to the frame the event lands on, so the
    schedule is frame-size independent and still fully deterministic.
    """

    seq: int
    op: str
    kind: str
    delay: float
    ratio: float

    def describe(self) -> str:
        """Canonical one-line form; the determinism tests compare these."""
        return (f"#{self.seq} {self.op} {self.kind} "
                f"delay={self.delay:.6f} ratio={self.ratio:.6f}")


class FaultPlan:
    """A seeded, deterministic schedule of transport faults.

    Parameters
    ----------
    seed:
        Seeds the plan's private ``random.Random``; two plans with the
        same seed driven through the same operation sequence inject
        byte-identical fault schedules.
    rate:
        Probability that any one transport operation faults.
    kinds:
        Fault kinds to draw from (default: all of :data:`FAULT_KINDS`);
        only kinds applicable to the faulting operation are considered.
    max_faults:
        Stop injecting after this many events (``None`` = unlimited) --
        the way tests force "exactly one fault, then clean".
    delay_range:
        ``(lo, hi)`` seconds for :data:`DELAY` events.
    """

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 kinds: Optional[tuple[str, ...]] = None,
                 max_faults: Optional[int] = None,
                 delay_range: tuple[float, float] = (0.01, 0.05),
                 partitions: Optional[PartitionMap] = None,
                 src: PartitionEnd = "client") -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        for kind in kinds or ():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds) if kinds is not None else FAULT_KINDS
        self.max_faults = max_faults
        self.delay_range = delay_range
        # Partition injection (deterministic, state-based): this plan
        # participates as endpoint `src`; dials and channel I/O check
        # the shared map before any RNG draw, so seeded schedules stay
        # aligned whether or not a partition is active.
        self.partitions = partitions
        self.src = src
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.events: list[FaultEvent] = []
        self.ops_seen = 0
        self.injected: dict[str, int] = {}
        # Set by the ConnectionPool/Endpoint the plan is attached to, so
        # injected faults appear in that process's metric snapshot as
        # ninf_faults_injected_total{kind=...} (OBSERVABILITY.md).
        self.metrics = None

    # -- the draw ------------------------------------------------------------

    def draw(self, op: str) -> Optional[FaultEvent]:
        """Decide whether the next ``op`` faults; record the event if so.

        Exactly one ``random()`` is consumed for a clean operation and
        three more for a faulting one, so schedules from equal seeds
        stay aligned however the draws resolve.
        """
        applicable = [k for k in self.kinds if k in _APPLICABLE[op]]
        with self._lock:
            self.ops_seen += 1
            if (self.max_faults is not None
                    and len(self.events) >= self.max_faults):
                return None
            if self._rng.random() >= self.rate or not applicable:
                return None
            kind = applicable[self._rng.randrange(len(applicable))]
            delay = self._rng.uniform(*self.delay_range)
            ratio = self._rng.random()
            event = FaultEvent(seq=len(self.events) + 1, op=op, kind=kind,
                               delay=delay, ratio=ratio)
            self.events.append(event)
            self.injected[kind] = self.injected.get(kind, 0) + 1
        registry = self.metrics
        if registry is not None:
            from repro.obs import names

            registry.counter(names.FAULTS_INJECTED,
                             "Transport faults injected by a FaultPlan",
                             labelnames=("kind",)).inc(kind=kind)
        return event

    def partition_drop(self, dst: Union[str, tuple[str, int], None]) -> bool:
        """Whether the edge ``self.src -> dst`` is partitioned away.

        Counts the drop (per-edge in the map, and in
        ``ninf_faults_partition_drops_total`` when a registry is
        attached) when it is.  Consumes no RNG: partition state never
        perturbs the seeded fault schedule.
        """
        if self.partitions is None or dst is None:
            return False
        if not self.partitions.is_blocked(self.src, dst):
            return False
        self.partitions.record_drop(self.src, dst)
        registry = self.metrics
        if registry is not None:
            from repro.obs import names

            registry.counter(
                names.FAULTS_PARTITION_DROPS,
                "Operations dropped by an injected network partition",
            ).inc()
        return True

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return len(self.events)

    def schedule(self) -> list[str]:
        """The injected schedule so far, one canonical line per event."""
        with self._lock:
            return [event.describe() for event in self.events]

    # -- channel factories ---------------------------------------------------

    def wrap(self, channel: Channel) -> "FaultyChannel":
        """Adopt ``channel``'s socket into a fault-injecting channel."""
        if isinstance(channel, FaultyChannel) and channel.plan is self:
            return channel
        faulty = FaultyChannel(channel.sock, self, timeout=channel.timeout,
                               remote=channel.remote)
        # Keep any shm medium negotiated before wrapping: faults must
        # land on the same bytes the clean channel would have sent.
        faulty._io = channel._io
        return faulty

    def connector(self, host: str, port: int,
                  timeout: Optional[float] = None,
                  connect_timeout: Optional[float] = None,
                  shm: Optional[bool] = False) -> "FaultyChannel":
        """Drop-in for :func:`repro.transport.connect` with dial faults.

        Signature-compatible with ``ConnectionPool``'s ``connector``
        parameter, which is how a plan reaches every pooled checkout.
        The shm handshake (when ``shm`` asks for one) runs *before*
        wrapping and consumes no fault draws, so chaos schedules stay
        aligned whether or not the channel upgrades.
        """
        if self.partition_drop((host, port)):
            raise ConnectionRefusedError(
                f"[partition] {self.src} -> {host}:{port} is blocked"
            )
        event = self.draw("dial")
        if event is not None:
            if event.kind == REFUSE_DIAL:
                raise ConnectionRefusedError(
                    f"[fault #{event.seq}] dial to {host}:{port} refused"
                )
            time.sleep(event.delay)
        return self.wrap(connect(host, port, timeout=timeout,
                                 connect_timeout=connect_timeout, shm=shm))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultPlan seed={self.seed} rate={self.rate} "
                f"injected={self.faults_injected}>")


class FaultyChannel(Channel):
    """A :class:`Channel` whose send/recv paths consult a fault plan.

    Fault semantics (what the *calling* side observes):

    - ``delay``: the operation sleeps, then proceeds normally.
    - ``truncate`` (send): a prefix of the frame is written, the socket
      is closed, and :class:`ConnectionClosed` is raised; the peer sees
      the stream end mid-frame.
    - ``corrupt`` (send): one byte of the frame is flipped and the full
      frame is written "successfully" -- the *peer's* framing CRC
      rejects it and drops the connection, so the failure surfaces on
      this side as :class:`ConnectionClosed` at the next recv.
    - ``drop_pre``: the socket is closed and the operation raises
      (``ConnectionResetError`` for send, :class:`ConnectionClosed` for
      recv).
    - ``drop_post`` (send): the frame is delivered, then the socket is
      closed; the failure surfaces at the next operation.
    """

    def __init__(self, sock: socket.socket, plan: FaultPlan,
                 timeout: Optional[float] = None,
                 remote: Optional[tuple[str, int]] = None) -> None:
        super().__init__(sock, timeout=timeout, remote=remote)
        self.plan = plan

    def send(self, msg_type: int, payload: bytes = b"",
             timeout: Union[None, float, _Unset] = _DEFAULT) -> None:
        """Send one frame, subject to the plan's send-applicable faults."""
        if self.plan.partition_drop(self.remote):
            self.close()
            raise ConnectionResetError(
                f"[partition] {self.plan.src} -> {self.remote} is blocked"
            )
        event = self.plan.draw("send")
        if event is None:
            return super().send(msg_type, payload, timeout=timeout)
        if event.kind == DELAY:
            time.sleep(event.delay)
            return super().send(msg_type, payload, timeout=timeout)
        if event.kind == DROP_PRE:
            self.close()
            raise ConnectionResetError(
                f"[fault #{event.seq}] connection dropped before send"
            )
        # Pre-framed fault writes go through _raw_sendall (which takes
        # the send lock itself) so they hit an attached shm medium the
        # same way they hit a socket.
        frame = encode_frame(msg_type, payload)
        if event.kind == TRUNCATE:
            cut = max(1, min(len(frame) - 1, int(event.ratio * len(frame))))
            self._raw_sendall(frame[:cut])
            self.close()
            raise ConnectionClosed(
                f"[fault #{event.seq}] frame truncated after "
                f"{cut}/{len(frame)} bytes"
            )
        if event.kind == CORRUPT:
            self._raw_sendall(_corrupt(frame, event.ratio))
            return None
        # DROP_POST: deliver, then kill the connection.
        self._raw_sendall(frame)
        self.close()
        return None

    def recv(self, timeout: Union[None, float, _Unset] = _DEFAULT
             ) -> tuple[int, bytes]:
        """Receive one frame, subject to delay/drop faults."""
        if self.plan.partition_drop(self.remote):
            self.close()
            raise ConnectionClosed(
                f"[partition] {self.plan.src} -> {self.remote} is blocked"
            )
        event = self.plan.draw("recv")
        if event is not None:
            if event.kind == DROP_PRE:
                self.close()
                raise ConnectionClosed(
                    f"[fault #{event.seq}] connection dropped before recv"
                )
            time.sleep(event.delay)
        return super().recv(timeout=timeout)


def _corrupt(frame: bytes, ratio: float) -> bytes:
    """Flip one byte of ``frame``, never in the magic or length fields.

    Payload bytes are preferred; a payload-less frame gets its CRC field
    flipped instead.  Either way the receiver's checksum verification
    fails deterministically (magic and length are left intact so the
    receiver reads exactly this frame and cannot mis-frame the stream).
    """
    if len(frame) > HEADER.size:
        index = HEADER.size + int(ratio * (len(frame) - HEADER.size))
    else:
        index = 12 + int(ratio * 4)  # within the 4-byte CRC field
    corrupted = bytearray(frame)
    corrupted[index] ^= 0xFF
    return bytes(corrupted)
