"""Keep-alive :class:`AsyncChannel` reuse keyed by ``(host, port)``.

The asyncio twin of :class:`~repro.transport.pool.ConnectionPool`:
same LIFO reuse, health-checked checkout, lazy idle eviction, and
``ninf_pool_*`` metrics, but single-loop -- all methods run on the
owning event loop, so plain attribute mutation is already atomic
(coroutines only interleave at ``await``, and no method awaits between
reading and writing pool state; ninf-lint's ``await-under-lock`` rule
is the project-wide guard against reintroducing ``threading`` locks
here).
"""

from __future__ import annotations

import time
from contextlib import asynccontextmanager
from typing import AsyncIterator, Callable, Optional

from repro.obs import MetricsRegistry, names
from repro.transport.faults import FaultPlan
from repro.transport.aiochannel import AsyncChannel, aconnect, \
    aconnect_with_faults

__all__ = ["AsyncConnectionPool"]


class AsyncConnectionPool:
    """Loop-affine keep-alive pool of :class:`AsyncChannel` objects.

    Parameter semantics match
    :class:`~repro.transport.pool.ConnectionPool` exactly; ``connector``
    is an *async* channel factory with the signature of
    :func:`~repro.transport.aiochannel.aconnect`, and ``fault_plan``
    routes every dial through
    :func:`~repro.transport.aiochannel.aconnect_with_faults` (mutually
    exclusive with ``connector``, as in the sync pool).
    """

    def __init__(self, timeout: Optional[float] = None, pool: bool = True,
                 max_idle_per_key: int = 8,
                 max_idle_seconds: float = 60.0,
                 connect_timeout: Optional[float] = None,
                 connector: Optional[Callable[..., "AsyncChannel"]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 fault_plan: Optional[FaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_idle_per_key < 1:
            raise ValueError(f"max_idle_per_key must be >= 1, "
                             f"got {max_idle_per_key}")
        if connector is not None and fault_plan is not None:
            raise ValueError("pass either connector or fault_plan, not both")
        self.timeout = timeout
        self.pooling = pool
        self.max_idle_per_key = max_idle_per_key
        self.max_idle_seconds = max_idle_seconds
        self.connect_timeout = connect_timeout
        self.fault_plan = fault_plan
        self._connect = connector
        self._clock = clock
        # (host, port) -> [(channel, checkin_stamp), ...]; LIFO reuse.
        self._idle: dict[tuple[str, int], list[tuple[AsyncChannel, float]]] = {}
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if fault_plan is not None and fault_plan.metrics is None:
            fault_plan.metrics = self.metrics
        self._created = self.metrics.counter(
            names.POOL_CONNECTIONS_CREATED, "Channels dialed by the pool")
        self._reused = self.metrics.counter(
            names.POOL_CONNECTIONS_REUSED,
            "Checkouts satisfied from an idle channel")
        self._idle_gauge = self.metrics.gauge(
            names.POOL_IDLE_CONNECTIONS, "Idle channels currently held")
        self._dials_refused = self.metrics.counter(
            names.POOL_DIALS_REFUSED,
            "Dials that failed with connection-refused")

    @property
    def created(self) -> int:
        """Channels dialed over this pool's lifetime (registry-backed)."""
        return int(self._created.value())

    @property
    def reused(self) -> int:
        """Checkouts served from an idle channel (registry-backed)."""
        return int(self._reused.value())

    @property
    def dials_refused(self) -> int:
        """Dials refused by the peer (registry-backed)."""
        return int(self._dials_refused.value())

    def _sync_idle_gauge(self) -> None:
        self._idle_gauge.set(
            sum(len(bucket) for bucket in self._idle.values()))

    async def _dial(self, host: str, port: int) -> AsyncChannel:
        try:
            if self._connect is not None:
                return await self._connect(
                    host, port, timeout=self.timeout,
                    connect_timeout=self.connect_timeout)
            if self.fault_plan is not None:
                return await aconnect_with_faults(
                    self.fault_plan, host, port, timeout=self.timeout,
                    connect_timeout=self.connect_timeout)
            return await aconnect(host, port, timeout=self.timeout,
                                  connect_timeout=self.connect_timeout)
        except ConnectionRefusedError:
            self._dials_refused.inc()
            raise

    # -- checkout / checkin -------------------------------------------------

    async def checkout(self, host: str, port: int) -> AsyncChannel:
        """An open channel to ``host:port`` -- reused when possible."""
        key = (host, port)
        if self.pooling:
            self._evict(self._clock())
            bucket = self._idle.get(key)
            while bucket:
                channel, _stamp = bucket.pop()
                if channel.healthy():
                    self._reused.inc()
                    self._sync_idle_gauge()
                    return channel
                channel.close()
            self._sync_idle_gauge()
        channel = await self._dial(host, port)
        channel.metrics = self.metrics
        self._created.inc()
        return channel

    def checkin(self, channel: AsyncChannel) -> None:
        """Return a healthy channel for reuse (closes it when pooling is
        off, the pool is closed, the bucket is full, or the channel has
        no dialed remote to key on)."""
        if (not self.pooling or channel.closed or channel.remote is None):
            channel.close()
            return
        now = self._clock()
        if self._closed:
            channel.close()
            return
        self._evict(now)
        bucket = self._idle.setdefault(channel.remote, [])
        if len(bucket) >= self.max_idle_per_key:
            channel.close()
            return
        bucket.append((channel, now))
        self._sync_idle_gauge()

    def discard(self, channel: AsyncChannel) -> None:
        """Close a channel that hit an error; never goes back in the pool."""
        channel.close()

    @asynccontextmanager
    async def lease(self, host: str, port: int) -> AsyncIterator[AsyncChannel]:
        """``async with pool.lease(h, p) as ch:`` -- checkin on success,
        discard on any exception (a failed exchange leaves the stream
        in an unknown framing state, so the connection is burned)."""
        channel = await self.checkout(host, port)
        try:
            yield channel
        except BaseException:
            self.discard(channel)
            raise
        self.checkin(channel)

    # -- eviction / shutdown ------------------------------------------------

    def _evict(self, now: float) -> None:
        if self.max_idle_seconds is None:
            return
        horizon = now - self.max_idle_seconds
        for key, bucket in list(self._idle.items()):
            keep = []
            for channel, stamp in bucket:
                if stamp < horizon or channel.closed:
                    channel.close()
                else:
                    keep.append((channel, stamp))
            if keep:
                self._idle[key] = keep
            else:
                del self._idle[key]

    def evict_idle(self) -> None:
        """Synchronously drop idle channels past ``max_idle_seconds``."""
        self._evict(self._clock())
        self._sync_idle_gauge()

    def idle_count(self, host: Optional[str] = None,
                   port: Optional[int] = None) -> int:
        """Idle channels held for one key, or for the whole pool."""
        if host is not None and port is not None:
            return len(self._idle.get((host, port), ()))
        return sum(len(bucket) for bucket in self._idle.values())

    def close(self) -> None:
        """Close every idle channel; the pool stays usable as a factory
        (subsequent checkins are closed rather than retained)."""
        self._closed = True
        buckets = list(self._idle.values())
        self._idle.clear()
        self._sync_idle_gauge()
        for bucket in buckets:
            for channel, _stamp in bucket:
                channel.close()

    async def __aenter__(self) -> "AsyncConnectionPool":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()
