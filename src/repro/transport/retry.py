"""Retry with exponential backoff, seeded jitter, and error classification.

The WAN experiments only make sense if a client can distinguish "the
network ate my frame" from "the remote routine failed": the former is
worth retrying on a fresh connection, the latter is deterministic and
never is.  :func:`is_transient` is that classification, shared by
:class:`RetryPolicy`, the :class:`~repro.client.NinfClient` counters,
and the metaserver's liveness prober.

Idempotent operations (``ping``, ``get_signature``, ``list_functions``,
``query_load``, result polling) always ride a :class:`RetryPolicy`.
``CALL`` historically could not: a request that died in flight may
still execute server-side, so auto-retry risked running the remote
routine twice.  Since the server grew a dedup/result cache keyed on
the logical call id (DESIGN.md §3.5), a retried CALL that actually
completed replays the cached reply instead of recomputing, and
``NinfClient(retry_calls=True)`` opts CALL into the policy too.
:class:`~repro.protocol.errors.ServerBusy` (a shed call — never
queued) and :class:`~repro.protocol.errors.ServerShutdown` (queued but
never dispatched) are therefore classified transient even though they
arrive as remote replies.

Emitted metrics (conventions and exact semantics in OBSERVABILITY.md):
a policy given a :class:`~repro.obs.MetricsRegistry` counts every
wrapped invocation in ``ninf_retry_attempts_total`` and every backoff-
then-retry in ``ninf_retry_retries_total``; the per-client view of the
same activity is ``ninf_client_attempts_total`` /
``ninf_client_retries_total`` on :class:`~repro.client.NinfClient`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, TYPE_CHECKING, TypeVar

if TYPE_CHECKING:  # import only for annotations; obs stays optional here
    from repro.obs import MetricsRegistry

from repro.protocol.errors import (
    ProtocolError,
    RemoteError,
    ServerBusy,
    ServerShutdown,
)

__all__ = ["RetryPolicy", "is_transient"]

T = TypeVar("T")


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is a transport-level failure worth retrying.

    Transport timeouts, connection resets/refusals (``OSError``), and
    framing-level :class:`ProtocolError` (bad magic, checksum mismatch,
    connection closed mid-frame) are transient: a fresh connection may
    well succeed.  So are :class:`ServerBusy` (the call was shed, never
    queued) and :class:`ServerShutdown` (queued, never dispatched) --
    the server *declining* work it provably did not run.  Any other
    :class:`RemoteError` is the server answering -- retrying a
    deterministic failure is pure waste -- and everything else (XDR
    bugs, ``ValueError``...) is a programming error.
    """
    if isinstance(exc, (ServerBusy, ServerShutdown)):
        return True
    if isinstance(exc, RemoteError):
        return False
    return isinstance(exc, (ProtocolError, OSError, TimeoutError))


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (1 = no retry).
    base_delay, multiplier, max_delay:
        Backoff before retry *k* (1-based) is
        ``min(max_delay, base_delay * multiplier**(k-1))``.
    jitter:
        Fraction of the backoff randomized: the slept delay is drawn
        uniformly from ``[delay*(1-jitter), delay*(1+jitter)]`` using
        ``rng``, so a seeded ``random.Random`` makes the whole retry
        schedule reproducible (and keeps a fleet of clients from
        retrying in lockstep).
    rng:
        Injected randomness; defaults to a fresh unseeded
        ``random.Random``.
    sleep:
        Injected clock for tests (defaults to ``time.sleep``).
    classify:
        Predicate deciding retryability; defaults to
        :func:`is_transient`.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``ninf_retry_attempts_total`` / ``ninf_retry_retries_total``
        alongside the instance's own ``attempts``/``retries``
        attributes (which always work, registry or not).
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 classify: Callable[[BaseException], bool] = is_transient,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep
        self.classify = classify
        self._lock = threading.Lock()
        # Aggregate observability (experiments report these).  The
        # attributes are authoritative; the optional registry mirrors
        # them for remote exposition (OBSERVABILITY.md).
        self.attempts = 0
        self.retries = 0
        self._attempts_metric = self._retries_metric = None
        if metrics is not None:
            from repro.obs import names

            self._attempts_metric = metrics.counter(
                names.RETRY_ATTEMPTS,
                "Invocations wrapped by a RetryPolicy")
            self._retries_metric = metrics.counter(
                names.RETRY_RETRIES,
                "Backoff-then-retry cycles taken by a RetryPolicy")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt)."""
        return cls(max_attempts=1)

    def backoff(self, retry_index: int) -> float:
        """Jittered delay before 1-based retry ``retry_index``."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (retry_index - 1))
        if self.jitter:
            with self._lock:
                spread = self.jitter * (2.0 * self.rng.random() - 1.0)
            delay *= 1.0 + spread
        return max(0.0, delay)

    def run(self, fn: Callable[[], T],
            on_retry: Optional[Callable[[int, BaseException], None]] = None,
            deadline: Optional[float] = None,
            clock: Callable[[], float] = time.monotonic) -> T:
        """Call ``fn`` until it succeeds or retries are exhausted.

        ``on_retry(retry_index, exc)`` fires before each backoff sleep.
        Non-transient errors and the final transient error propagate
        unchanged.  A ``deadline`` (on ``clock``) stops retrying once
        the budget is spent: an error raised at or past the deadline
        propagates even if transient, and the backoff sleep never
        overshoots the remaining budget.  A :class:`ServerBusy` failure
        stretches the sleep to its ``retry_after`` hint (capped at
        ``max_delay``) -- retrying sooner than the server asked is
        guaranteed to be shed again.
        """
        attempt = 1
        while True:
            with self._lock:
                self.attempts += 1
            if self._attempts_metric is not None:
                self._attempts_metric.inc()
            try:
                return fn()
            except BaseException as exc:
                if (not self.classify(exc)
                        or attempt >= self.max_attempts
                        or (deadline is not None and clock() >= deadline)):
                    raise
                failure = exc
            with self._lock:
                self.retries += 1
            if self._retries_metric is not None:
                self._retries_metric.inc()
            if on_retry is not None:
                on_retry(attempt, failure)
            delay = self.backoff(attempt)
            hint = getattr(failure, "retry_after", 0.0)
            if hint:
                delay = max(delay, min(float(hint), self.max_delay))
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - clock()))
            self.sleep(delay)
            attempt += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RetryPolicy attempts<={self.max_attempts} "
                f"base={self.base_delay}s x{self.multiplier}>")
