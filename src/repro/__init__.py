"""repro: a working Ninf-style GridRPC system plus the Ninf
global-computing simulator, reproducing Takefusa et al., "Multi-client
LAN/WAN Performance Analysis of Ninf" (SC'97).

Layers (see DESIGN.md for the full inventory):

- :mod:`repro.xdr`, :mod:`repro.idl`, :mod:`repro.protocol` -- the wire:
  Sun XDR, the Ninf IDL with compiled signatures, the two-stage RPC
  protocol.
- :mod:`repro.server`, :mod:`repro.client`, :mod:`repro.metaserver` --
  the system: computational servers (FCFS/SJF/FPFS/FPMPFS scheduling,
  task- vs data-parallel execution), the Ninf_call client API with
  async calls and dependency-driven transactions, and the monitoring/
  scheduling metaserver.
- :mod:`repro.libs` -- the registered numerics: Linpack (dgefa/dgesl +
  blocked LU), NAS EP (bit-faithful NPB generator), DOS.
- :mod:`repro.sim`, :mod:`repro.model`, :mod:`repro.simninf` -- the
  simulator: discrete-event substrate, calibrated 1997 machine/network
  catalogs, and the Ninf model that regenerates every table and figure
  of the paper (drivers in :mod:`repro.experiments`).

Quickstart::

    from repro.server import NinfServer, Registry
    from repro.client import NinfClient
    import numpy as np

    registry = Registry()
    registry.register(
        'Define dmmul(mode_in int n, mode_in double A[n][n], '
        'mode_in double B[n][n], mode_out double C[n][n]);',
        lambda n, a, b, c: np.matmul(a, b, out=c))
    with NinfServer(registry) as server:
        with NinfClient(*server.address) as client:
            c = np.zeros((4, 4))
            client.call("dmmul", 4, np.eye(4), np.eye(4), c)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
