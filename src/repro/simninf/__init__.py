"""The Ninf global-computing simulator.

The paper's conclusion announces exactly this artifact: "One current
plan we have is to build a global computing simulator for Ninf, on which
we could readily test different client network topologies under various
communication and other parameters."  This package models the full Ninf
call path on the :mod:`repro.sim` substrate:

  client think time -> request (latency) -> server accept (T_enqueue)
  -> fork/exec (T_dequeue) -> argument upload (shared network flows)
  -> computation (PE pool, task- or data-parallel) -> result download
  -> T_complete

using the calibrated :mod:`repro.model` machine and network catalogs.

- :mod:`repro.simninf.calls` -- workload descriptors and per-call records.
- :mod:`repro.simninf.server` -- the simulated computational server.
- :mod:`repro.simninf.client` -- the paper's client model: every ``s=3``
  seconds issue a call with probability ``p=1/2`` (§4.1).
- :mod:`repro.simninf.metaserver` -- metaserver dispatch with per-call
  scheduling overhead (the Fig 11 Java-prototype effect).
- :mod:`repro.simninf.metrics` -- table-row aggregation matching the
  paper's columns (perf max/min/mean, response, wait, throughput, CPU
  utilization, load average, times).
- :mod:`repro.simninf.stagedriver` -- replay a ``ninf-bench rpc`` stage
  schedule as deterministic sim cells (the CI perf-gate backend).
"""

from repro.simninf.calls import CallSpec, SimCallRecord, ep_spec, linpack_spec
from repro.simninf.client import WorkloadClient
from repro.simninf.metaserver import SimMetaserver
from repro.simninf.metrics import ColumnStats, TableRow, aggregate
from repro.simninf.server import SimNinfServer
from repro.simninf.stagedriver import SimStageRow, run_stage_schedule

__all__ = [
    "CallSpec",
    "ColumnStats",
    "SimCallRecord",
    "SimMetaserver",
    "SimNinfServer",
    "SimStageRow",
    "TableRow",
    "WorkloadClient",
    "aggregate",
    "ep_spec",
    "linpack_spec",
    "run_stage_schedule",
]
