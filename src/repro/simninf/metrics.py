"""Aggregation of call records into the paper's table rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.machine import Machine, MachineStats
from repro.simninf.calls import SimCallRecord

__all__ = ["ColumnStats", "LoadSampler", "TableRow", "aggregate"]


@dataclass(frozen=True)
class ColumnStats:
    """max/min/mean triple, the format of every table cell."""

    max: float
    min: float
    mean: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "ColumnStats":
        if not values:
            return cls(max=0.0, min=0.0, mean=0.0)
        return cls(max=max(values), min=min(values),
                   mean=sum(values) / len(values))

    def format(self, scale: float = 1.0, digits: int = 2) -> str:
        """Render as the paper's ``max/min/mean`` cell text."""
        return (f"{self.max / scale:.{digits}f}/"
                f"{self.min / scale:.{digits}f}/"
                f"{self.mean / scale:.{digits}f}")


@dataclass(frozen=True)
class TableRow:
    """One (n, c) cell of the paper's multi-client tables."""

    n: Optional[int]
    c: int
    performance: ColumnStats      # flop/s or ops/s
    response: ColumnStats         # seconds
    wait: ColumnStats             # seconds
    throughput: ColumnStats       # bytes/s
    cpu_utilization: float        # percent
    load_average: float           # time-averaged runnable threads
    peak_load_average: float      # highest 1-min load seen in the run
    times: int                    # completed calls

    def format(self, perf_scale: float = 1e6,
               throughput_scale: float = 1e6) -> str:
        """One paper-style text line for this (n, c) cell."""
        return (
            f"n={self.n if self.n is not None else '-':>5} c={self.c:>2}  "
            f"perf[{self.performance.format(perf_scale)}]  "
            f"resp[{self.response.format(1.0)}]  "
            f"wait[{self.wait.format(1.0)}]  "
            f"thru[{self.throughput.format(throughput_scale, 3)}]  "
            f"cpu={self.cpu_utilization:6.2f}%  "
            f"load={self.load_average:6.2f}  "
            f"times={self.times}"
        )


class LoadSampler:
    """Periodically samples a machine's load average into its stats
    window (the paper sampled server load during each run)."""

    def __init__(self, sim: Simulator, machine: Machine,
                 stats: MachineStats, interval: float = 2.0):
        self.sim = sim
        self.machine = machine
        self.stats = stats
        self.interval = interval
        self.process = sim.process(self._run(), name="load-sampler")

    def _run(self) -> Generator:
        while True:
            yield self.sim.timeout(self.interval)
            self.stats.sample_load()


def aggregate(records: Sequence[SimCallRecord], n: Optional[int], c: int,
              stats: MachineStats) -> TableRow:
    """Build a table row from completed calls plus the machine window."""
    return TableRow(
        n=n,
        c=c,
        performance=ColumnStats.of([r.performance for r in records]),
        response=ColumnStats.of([r.response for r in records]),
        wait=ColumnStats.of([r.wait for r in records]),
        throughput=ColumnStats.of([r.throughput for r in records]),
        cpu_utilization=stats.cpu_utilization,
        load_average=stats.mean_load_average,
        peak_load_average=stats.peak_load_average,
        times=len(records),
    )
