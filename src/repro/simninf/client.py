"""The paper's multi-client workload model.

§4.1: "We assume that each client performs a Ninf_call on the interval
of ``s`` seconds with probability ``p`` ... We set the other parameters
to be ``s = 3``, ``p = 1/2``."  A client therefore loops: wait ``s``
seconds; with probability ``p`` issue a blocking Ninf_call; repeat --
one outstanding call per client, like the benchmark driver.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import Route
from repro.simninf.calls import CallSpec, SimCallRecord
from repro.simninf.server import SimNinfServer

__all__ = ["WorkloadClient", "run_single_call"]


class WorkloadClient:
    """One benchmark client issuing repeated Ninf_calls.

    ``pooled=True`` models a client that keeps its TCP connection to
    the server alive across calls (the :class:`repro.transport`
    ``ConnectionPool``): the first call pays the full per-call setup
    cost, every later call only ``pooled_setup`` seconds.  The default
    ``pooled=False`` is the paper's connection-per-call client.
    """

    def __init__(self, sim: Simulator, client_id: int, server: SimNinfServer,
                 route: Route, spec: CallSpec, s: float = 3.0, p: float = 0.5,
                 horizon: float = 300.0, seed: int = 0, site: str = "lan",
                 max_calls: Optional[int] = None, pooled: bool = False,
                 pooled_setup: float = 0.0):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"issue probability must be in (0, 1], got {p}")
        if s < 0:
            raise ValueError(f"interval must be >= 0, got {s}")
        if pooled_setup < 0:
            raise ValueError(f"pooled_setup must be >= 0, got {pooled_setup}")
        self.sim = sim
        self.client_id = client_id
        self.server = server
        self.route = route
        self.spec = spec
        self.s = s
        self.p = p
        self.horizon = horizon
        self.site = site
        self.max_calls = max_calls
        self.pooled = pooled
        self.pooled_setup = pooled_setup
        self.rng = np.random.default_rng((seed, client_id))
        self.records: list[SimCallRecord] = []
        self.process = sim.process(self._run(), name=f"client-{client_id}")

    def _run(self) -> Generator:
        sim = self.sim
        # Desynchronize client start-up (real users do not begin in
        # lockstep; without this, max-min sharing phase-locks the flows).
        yield sim.timeout(float(self.rng.uniform(0.0, self.s)))
        while sim.now < self.horizon:
            yield sim.timeout(self.s)
            if self.rng.random() >= self.p:
                continue
            if sim.now >= self.horizon:
                break
            record = SimCallRecord(spec=self.spec, client_id=self.client_id,
                                   submit_time=sim.now, site=self.site)
            # A pooled client's connection is already open after the
            # first call; only the residual setup cost remains.
            t_setup = (self.pooled_setup if self.pooled and self.records
                       else None)
            yield from self.server.execute_call(record, self.route,
                                                t_setup=t_setup)
            self.records.append(record)
            if self.max_calls is not None and len(self.records) >= self.max_calls:
                return


def run_single_call(sim: Simulator, server: SimNinfServer, route: Route,
                    spec: CallSpec,
                    on_done: Callable[[SimCallRecord], None]) -> None:
    """Fire one call immediately (single-client Fig 3/4/5 measurements)."""

    def body() -> Generator:
        record = SimCallRecord(spec=spec, client_id=0, submit_time=sim.now)
        yield from server.execute_call(record, route)
        on_done(record)

    sim.process(body(), name="single-call")
