"""The paper's multi-client workload model.

§4.1: "We assume that each client performs a Ninf_call on the interval
of ``s`` seconds with probability ``p`` ... We set the other parameters
to be ``s = 3``, ``p = 1/2``."  A client therefore loops: wait ``s``
seconds; with probability ``p`` issue a blocking Ninf_call; repeat --
one outstanding call per client, like the benchmark driver.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import Route
from repro.simninf.calls import CallSpec, SimCallRecord
from repro.simninf.server import SimNinfServer

__all__ = ["WorkloadClient", "run_single_call"]


class WorkloadClient:
    """One benchmark client issuing repeated Ninf_calls.

    ``pooled=True`` models a client that keeps its TCP connection to
    the server alive across calls (the :class:`repro.transport`
    ``ConnectionPool``): the first call pays the full per-call setup
    cost, every later call only ``pooled_setup`` seconds.  The default
    ``pooled=False`` is the paper's connection-per-call client.

    ``fault_rate`` is the simulated analogue of the transport layer's
    :class:`~repro.transport.FaultPlan`: each call attempt fails with
    this probability (connection dropped mid-exchange), costing
    ``fault_cost`` seconds before the client notices.  With
    ``retry_attempts > 1`` the client retries the call -- a retried
    pooled client must re-dial, so retries pay the full setup cost.
    Fault draws come from a *separate* seeded RNG so ``fault_rate=0``
    reproduces the historical schedules byte-for-byte.

    Resilience knobs (DESIGN.md §3.5):

    - ``post_fault_rate`` drops the *reply* after execution (the
      transport's ``drop_post``).  The retried call replays from the
      server's dedup cache when it has one, or re-executes when not --
      the simulated exactly-once-vs-at-least-once ablation.
    - ``backups`` lists ``(server, route)`` failover targets; a shed or
      dead primary moves the call to the next target (the live
      BrokeredClient re-pick).  Without backups a shed call waits out
      the server's ``retry_after`` hint and retries in place.
    - ``call_deadline`` marks completed calls that blew the per-call
      budget (counted in ``late_calls``).
    - ``partition_windows`` lists ``(start, end)`` sim-time intervals
      during which the client's link is cut: every attempt inside a
      window fails deterministically (counted in ``partition_drops``).
      Mirroring the transport's state-based
      :class:`~repro.transport.faults.PartitionMap`, a partitioned
      attempt consumes *no* fault-RNG draw, so the seeded fault
      schedule outside the windows is byte-identical with the windows
      present or absent (DESIGN.md §3.7).
    """

    def __init__(self, sim: Simulator, client_id: int, server: SimNinfServer,
                 route: Route, spec: CallSpec, s: float = 3.0, p: float = 0.5,
                 horizon: float = 300.0, seed: int = 0, site: str = "lan",
                 max_calls: Optional[int] = None, pooled: bool = False,
                 pooled_setup: float = 0.0, fault_rate: float = 0.0,
                 retry_attempts: int = 1,
                 fault_cost: Optional[float] = None,
                 post_fault_rate: float = 0.0,
                 backups: Sequence[tuple[SimNinfServer, Route]] = (),
                 call_deadline: Optional[float] = None,
                 partition_windows: Sequence[tuple[float, float]] = ()):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"issue probability must be in (0, 1], got {p}")
        if s < 0:
            raise ValueError(f"interval must be >= 0, got {s}")
        if pooled_setup < 0:
            raise ValueError(f"pooled_setup must be >= 0, got {pooled_setup}")
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError(f"fault_rate must be in [0, 1), got {fault_rate}")
        if not 0.0 <= post_fault_rate < 1.0:
            raise ValueError(f"post_fault_rate must be in [0, 1), "
                             f"got {post_fault_rate}")
        if retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, "
                             f"got {retry_attempts}")
        self.sim = sim
        self.client_id = client_id
        self.server = server
        self.route = route
        self.spec = spec
        self.s = s
        self.p = p
        self.horizon = horizon
        self.site = site
        self.max_calls = max_calls
        self.pooled = pooled
        self.pooled_setup = pooled_setup
        self.fault_rate = fault_rate
        self.retry_attempts = retry_attempts
        self.post_fault_rate = post_fault_rate
        self.backups = list(backups)
        self.call_deadline = call_deadline
        for start, end in partition_windows:
            if end <= start:
                raise ValueError(
                    f"partition window ({start}, {end}) is empty")
        self.partition_windows = tuple(partition_windows)
        # Default failed-attempt cost: a round trip to discover the
        # drop, never less than a tenth of a second of client-side
        # timeout machinery.
        self.fault_cost = (fault_cost if fault_cost is not None
                           else max(2.0 * route.latency, 0.1))
        self.rng = np.random.default_rng((seed, client_id))
        self.fault_rng = np.random.default_rng((seed, client_id, 0xFA))
        self.records: list[SimCallRecord] = []
        # Availability accounting: issued = len(records) + failed_calls.
        self.call_attempts = 0
        self.faults_seen = 0
        self.partition_drops = 0
        self.retries = 0
        self.failed_calls = 0
        self.shed_seen = 0
        self.failovers = 0
        self.late_calls = 0
        # A fault burns the keep-alive connection; the next delivered
        # call re-dials (full setup) and re-opens it.
        self._connection_open = False
        self.process = sim.process(self._run(), name=f"client-{client_id}")

    def _partitioned(self, now: float) -> bool:
        """Whether a partition window covers sim-time ``now``."""
        return any(start <= now < end
                   for start, end in self.partition_windows)

    def _attempt_faults(self) -> Generator:
        """Pre-call fault/retry loop; yields the time faults burn.

        Returns (via StopIteration value) ``True`` when an attempt got
        through and the call proper should execute, ``False`` when all
        ``retry_attempts`` were eaten by faults.
        """
        for attempt in range(1, self.retry_attempts + 1):
            self.call_attempts += 1
            # Partition check first, consuming no RNG draw -- state,
            # not chance, exactly like PartitionMap on the live stack.
            if self._partitioned(self.sim.now):
                self.partition_drops += 1
                self._connection_open = False
                yield self.sim.timeout(self.fault_cost)
                if attempt < self.retry_attempts:
                    self.retries += 1
                continue
            if (self.fault_rate == 0.0
                    or self.fault_rng.random() >= self.fault_rate):
                return True
            self.faults_seen += 1
            self._connection_open = False
            yield self.sim.timeout(self.fault_cost)
            if attempt < self.retry_attempts:
                self.retries += 1
        self.failed_calls += 1
        return False

    def _run(self) -> Generator:
        sim = self.sim
        # Desynchronize client start-up (real users do not begin in
        # lockstep; without this, max-min sharing phase-locks the flows).
        yield sim.timeout(float(self.rng.uniform(0.0, self.s)))
        while sim.now < self.horizon:
            yield sim.timeout(self.s)
            if self.rng.random() >= self.p:
                continue
            if sim.now >= self.horizon:
                break
            record = SimCallRecord(spec=self.spec, client_id=self.client_id,
                                   submit_time=sim.now, site=self.site)
            delivered = yield from self._attempt_faults()
            if not delivered:
                continue
            delivered = yield from self._issue(record)
            if not delivered:
                continue
            if (self.call_deadline is not None
                    and record.elapsed > self.call_deadline):
                self.late_calls += 1
            self.records.append(record)
            if self.max_calls is not None and len(self.records) >= self.max_calls:
                return

    def _issue(self, record: SimCallRecord) -> Generator:
        """Issue one logical call, riding out sheds, deaths, and lost
        replies.

        Returns ``True`` when a reply reached the client (the record is
        complete), ``False`` when the attempt budget ran out.  The
        attempt budget is ``retry_attempts``, stretched to cover every
        failover target at least once when backups are configured.
        """
        sim = self.sim
        targets = [(self.server, self.route), *self.backups]
        budget = max(self.retry_attempts, len(targets))
        target = 0
        for attempt in range(1, budget + 1):
            server, route = targets[target % len(targets)]
            primary = server is self.server
            # A pooled client's connection is already open after the
            # first call; only the residual setup cost remains -- but a
            # faulted attempt burned the connection, so the call right
            # after a fault re-dials and pays full setup.
            t_setup = (self.pooled_setup
                       if self.pooled and primary and self._connection_open
                       else None)
            if attempt > 1:
                self.call_attempts += 1
                self.retries += 1
            yield from server.execute_call(record, route, t_setup=t_setup)
            if record.outcome == "ok":
                if primary:
                    self._connection_open = True
                yield from self._maybe_lose_reply(record, server, route)
                return True
            if record.outcome == "shed":
                self.shed_seen += 1
            if attempt >= budget:
                break
            if len(targets) > 1:
                # Failover: replay on the next candidate (the live
                # BrokeredClient's metaserver re-pick).
                target += 1
                self.failovers += 1
            elif record.outcome == "dead":
                break  # nowhere else to go; retrying a corpse is futile
            else:
                # Shed with no backup: honour the server's retry-after
                # hint (the BUSY reply's backoff floor).
                yield sim.timeout(max(record.retry_after, 0.05))
        self.failed_calls += 1
        return False

    def _maybe_lose_reply(self, record: SimCallRecord,
                          server: SimNinfServer, route: Route) -> Generator:
        """Post-execution reply loss (the transport's ``drop_post``).

        The call executed; the reply frame died in flight.  The retry
        replays from the server's dedup cache when it keeps one
        (exactly-once), or re-executes the whole call when it does not
        (at-least-once, paying queue + compute again).
        """
        if (self.post_fault_rate == 0.0
                or self.fault_rng.random() >= self.post_fault_rate):
            return
        self.faults_seen += 1
        self._connection_open = False
        self.call_attempts += 1
        self.retries += 1
        yield self.sim.timeout(self.fault_cost)
        if server.dedup:
            yield from server.replay_result(record, route)
        else:
            yield from server.execute_call(record, route)


def run_single_call(sim: Simulator, server: SimNinfServer, route: Route,
                    spec: CallSpec,
                    on_done: Callable[[SimCallRecord], None]) -> None:
    """Fire one call immediately (single-client Fig 3/4/5 measurements)."""

    def body() -> Generator:
        record = SimCallRecord(spec=spec, client_id=0, submit_time=sim.now)
        yield from server.execute_call(record, route)
        on_done(record)

    sim.process(body(), name="single-call")
