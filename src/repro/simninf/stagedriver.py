"""Run a ``ninf-bench rpc`` stage schedule on the simulator.

This is the deterministic half of the harness: the same
:class:`~repro.bench.stages.StageSchedule` the live coordinator walks
with real processes is replayed here as discrete-event cells, one
fresh :class:`~repro.sim.engine.Simulator` per stage.  Fresh-per-stage
keeps stages independent operating points (like the live run, where
every stage builds new clients) and makes the whole sweep a pure
function of ``(schedule, server knobs)`` -- the byte-determinism the
CI perf gate relies on.

The server model is the paper's J90 cell (``mode="task"``: concurrent
calls processor-share the PE pool) with a synthetic fixed-cost call,
so the goodput-vs-clients curve has the same linear-then-knee shape
DiPerF expects from the live ramp: linear while clients < effective
capacity, flat (or shedding) past it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.model.machines import machine
from repro.model.network import lan_catalog
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.simninf.calls import CallSpec
from repro.simninf.client import WorkloadClient
from repro.simninf.server import SimNinfServer

__all__ = ["SimStageRow", "bench_call_spec", "run_stage_schedule"]


@dataclass
class SimStageRow:
    """What one simulated stage measured (consumed by
    :func:`repro.bench.rpc.run_rpc_sim`)."""

    ok: int = 0
    shed: int = 0
    failed: int = 0
    retries: int = 0
    elapsed_s: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    per_client_ok: list = field(default_factory=list)
    server_jobs_delta: int = 0
    server_sheds_delta: int = 0


def bench_call_spec(service_seconds: float = 0.05,
                    payload_bytes: float = 1024.0) -> CallSpec:
    """The synthetic fixed-service-time call the sim stages issue --
    the simulator's analogue of the live harness's ``bench_spin``."""
    return CallSpec(
        name="sim_spin",
        input_bytes=payload_bytes,
        output_bytes=payload_bytes,
        comp_seconds_1pe=service_seconds,
        comp_seconds_allpe=service_seconds,
        work_units=0.0,
    )


def _run_stage(clients: int, duration_s: float, think_s: float,
               seed: int, spec: CallSpec, num_pes: int,
               max_queued: Optional[int]) -> SimStageRow:
    """One stage = one self-contained multi-client sim cell."""
    sim = Simulator()
    network = Network(sim)
    server_spec = replace(machine("j90"), num_pes=num_pes)
    server = SimNinfServer(sim, network, server_spec, mode="task",
                           max_queued=max_queued)
    catalog = lan_catalog(server_spec)
    client_spec = machine("alpha")
    workload = [
        WorkloadClient(sim, i, server,
                       catalog.route_for(client_spec, i), spec,
                       s=think_s, p=1.0, horizon=duration_s, seed=seed,
                       pooled=True)
        for i in range(clients)
    ]
    sim.run(until=duration_s)
    # Drain in-flight calls past the issuing horizon.
    while any(cl.process.alive for cl in workload):
        if not sim.step():  # pragma: no cover - defensive
            break

    row = SimStageRow()
    latencies = []
    for cl in workload:
        row.per_client_ok.append(len(cl.records))
        row.ok += len(cl.records)
        row.shed += cl.shed_seen
        row.failed += cl.failed_calls
        row.retries += cl.retries
        latencies.extend(r.complete_time - r.submit_time
                         for r in cl.records)
    row.elapsed_s = sim.now
    if latencies:
        p50, p95, p99 = np.percentile(latencies, (50, 95, 99))
        row.latency_ms = {"p50": round(float(p50) * 1000.0, 3),
                          "p95": round(float(p95) * 1000.0, 3),
                          "p99": round(float(p99) * 1000.0, 3)}
    else:
        row.latency_ms = {"p50": None, "p95": None, "p99": None}
    # Fresh server per stage, so totals are this stage's deltas.
    row.server_jobs_delta = server.calls_completed
    row.server_sheds_delta = server.shed
    return row


def run_stage_schedule(schedule, num_pes: int = 4,
                       max_queued: Optional[int] = 8,
                       service_seconds: float = 0.05,
                       payload_bytes: float = 1024.0) -> list[SimStageRow]:
    """Replay ``schedule`` stage by stage; returns one row per stage.

    Deterministic: per-stage seeds derive from ``schedule.seed`` and
    the stage index, and nothing reads a wall clock.
    """
    spec = bench_call_spec(service_seconds, payload_bytes)
    return [
        _run_stage(stage.clients, stage.duration_s, stage.think_s,
                   seed=schedule.seed + index, spec=spec,
                   num_pes=num_pes, max_queued=max_queued)
        for index, stage in enumerate(schedule)
    ]
