"""Simulated metaserver: transaction fan-out with dispatch overhead.

Fig 11 benchmarks "automated load balancing using the Ninf metaserver"
for task-parallel EP on a 32-node Alpha cluster and finds near-linear
speedup for large problems but *slowdown* for the small "sample" size
(2^24), "because the prototype Metaserver is written in Java, and the
overhead of scheduling and distributing Ninf_call has become apparent
compared to smaller problem size".

The model: dispatching each Ninf_call of a transaction costs
``t_dispatch`` on the metaserver (serialized -- one Java scheduler), and
each call then runs on its own server node.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.sim.engine import AllOf, Simulator
from repro.sim.network import Network, Route
from repro.simninf.calls import CallSpec, SimCallRecord
from repro.simninf.server import SimNinfServer

__all__ = ["SimMetaserver", "TransactionResult"]


class TransactionResult:
    """Completion times of a fanned-out transaction."""

    def __init__(self, records: list[SimCallRecord], started: float,
                 finished: float):
        self.records = records
        self.started = started
        self.finished = finished

    @property
    def makespan(self) -> float:
        return self.finished - self.started

    def effective_performance(self, total_work: float) -> float:
        """The paper's P'_ninf_call: total work over transaction time."""
        if self.makespan <= 0:
            return float("inf")
        return total_work / self.makespan


class SimMetaserver:
    """Schedules the calls of a transaction onto server nodes."""

    def __init__(self, sim: Simulator, network: Network,
                 servers: Sequence[SimNinfServer],
                 routes: Sequence[Route],
                 t_dispatch: float = 0.2):
        if len(servers) != len(routes):
            raise ValueError("need one route per server")
        if not servers:
            raise ValueError("metaserver needs at least one server")
        if t_dispatch < 0:
            raise ValueError(f"t_dispatch must be >= 0, got {t_dispatch}")
        self.sim = sim
        self.network = network
        self.servers = list(servers)
        self.routes = list(routes)
        self.t_dispatch = t_dispatch

    def run_transaction(self, specs: Sequence[CallSpec],
                        on_done) -> None:
        """Fan ``specs`` out across the servers (round-robin); call
        ``on_done(TransactionResult)`` when every call completes."""
        sim = self.sim

        def body() -> Generator:
            started = sim.now
            records: list[SimCallRecord] = []
            call_processes = []
            for i, spec in enumerate(specs):
                # The Java metaserver schedules calls one at a time.
                yield sim.timeout(self.t_dispatch)
                server = self.servers[i % len(self.servers)]
                route = self.routes[i % len(self.routes)]
                record = SimCallRecord(spec=spec, client_id=i,
                                       submit_time=sim.now)
                records.append(record)
                call_processes.append(
                    sim.process(server.execute_call(record, route),
                                name=f"txn-call-{i}")
                )
            if call_processes:
                yield AllOf(call_processes)
            on_done(TransactionResult(records, started, sim.now))

        sim.process(body(), name="metaserver-transaction")
