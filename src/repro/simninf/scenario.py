"""Declarative scenario API for the global-computing simulator.

The paper's stated purpose for the simulator: "we could readily test
different client network topologies under various communication and
other parameters."  This module is that front door -- describe servers,
sites, client groups and workloads as data; run; get table rows back.

>>> scenario = Scenario(
...     servers=[ServerSpec("etl-j90", machine="j90", mode="data")],
...     sites=[SiteSpec("ochau", bandwidth=0.17e6, latency=0.015,
...                     stream_ceiling=0.13e6)],
...     clients=[ClientGroup(site="ochau", count=4, server="etl-j90",
...                          workload=Workload("linpack", n=1000))],
...     horizon=1200.0)
>>> result = scenario.run(seed=1)
>>> result.rows["etl-j90"].performance.mean    # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.machines import MachineSpec, machine
from repro.model.network import ftp_throughput
from repro.server.scheduling import SchedulingPolicy, make_policy
from repro.sim.engine import Simulator
from repro.sim.network import Link, Network, Route
from repro.simninf.calls import CallSpec, SimCallRecord, ep_spec, linpack_spec
from repro.simninf.client import WorkloadClient
from repro.simninf.metrics import LoadSampler, TableRow, aggregate
from repro.simninf.server import SimNinfServer

__all__ = ["ClientGroup", "Scenario", "ScenarioResult", "ServerSpec",
           "SiteSpec", "Workload"]


@dataclass(frozen=True)
class ServerSpec:
    """One computational server in the scenario."""

    name: str
    machine: str = "j90"             # catalog name
    mode: str = "task"               # task- or data-parallel
    nic_bandwidth: float = 12e6      # server attachment, bytes/s
    policy: Optional[str] = None     # admission policy (None = 1997 FCFS fork)
    max_concurrent: Optional[int] = None
    t_setup: Optional[float] = None  # per-call setup cost (None = T_comm0)


@dataclass(frozen=True)
class SiteSpec:
    """A client site: shared uplink toward the servers."""

    name: str
    bandwidth: float                 # shared uplink, bytes/s
    latency: float = 0.0
    stream_ceiling: Optional[float] = None  # per-connection TCP limit


@dataclass(frozen=True)
class Workload:
    """What each client of a group calls repeatedly."""

    kind: str                        # "linpack" | "ep" | "custom"
    n: int = 600                     # Linpack order / EP log2 pairs
    spec: Optional[CallSpec] = None  # for kind="custom"

    def build(self, server_machine: MachineSpec) -> CallSpec:
        """Materialize the CallSpec against the target machine."""
        if self.kind == "linpack":
            return linpack_spec(server_machine, self.n)
        if self.kind == "ep":
            return ep_spec(server_machine, m=self.n)
        if self.kind == "custom":
            if self.spec is None:
                raise ValueError("custom workload needs an explicit spec")
            return self.spec
        raise ValueError(f"unknown workload kind {self.kind!r}")


@dataclass(frozen=True)
class ClientGroup:
    """``count`` identical clients at a site, calling one server.

    ``pooled=False`` is the paper's connection-per-call client; ``True``
    models transport-layer connection reuse (only the first call pays
    the full setup cost, later calls pay ``pooled_setup``).
    """

    site: str
    count: int
    server: str
    workload: Workload
    client_machine: str = "alpha"
    s: float = 3.0                  # the paper's think interval
    p: float = 0.5                  # issue probability
    pooled: bool = False            # keep-alive connection reuse
    pooled_setup: float = 0.0       # residual setup cost when pooled


@dataclass
class ScenarioResult:
    """Aggregated outcome: one table row per server + raw records."""

    rows: dict[str, TableRow]
    records: dict[str, list[SimCallRecord]]
    per_site_throughput: dict[str, float] = field(default_factory=dict)

    def total_calls(self) -> int:
        """Completed calls across every server."""
        return sum(row.times for row in self.rows.values())


class Scenario:
    """A runnable simulator configuration."""

    def __init__(self, servers: list[ServerSpec], sites: list[SiteSpec],
                 clients: list[ClientGroup], horizon: float = 600.0):
        if not servers:
            raise ValueError("a scenario needs at least one server")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.servers = {s.name: s for s in servers}
        self.sites = {s.name: s for s in sites}
        self.clients = clients
        self.horizon = horizon
        if len(self.servers) != len(servers):
            raise ValueError("duplicate server names")
        if len(self.sites) != len(sites):
            raise ValueError("duplicate site names")
        for group in clients:
            if group.server not in self.servers:
                raise ValueError(f"client group references unknown server "
                                 f"{group.server!r}")
            if group.site not in self.sites and group.site != "lan":
                raise ValueError(f"client group references unknown site "
                                 f"{group.site!r}")
            if group.count < 1:
                raise ValueError("client groups need count >= 1")

    def run(self, seed: int = 1997) -> ScenarioResult:
        """Build the simulation, run to drain, aggregate per server."""
        sim = Simulator()
        network = Network(sim)
        sim_servers: dict[str, SimNinfServer] = {}
        nics: dict[str, Link] = {}
        stats = {}
        for name, spec in self.servers.items():
            server_machine = machine(spec.machine)
            policy: Optional[SchedulingPolicy] = (
                make_policy(spec.policy) if spec.policy else None
            )
            server_kwargs = {}
            if spec.t_setup is not None:
                server_kwargs["t_setup"] = spec.t_setup
            sim_servers[name] = SimNinfServer(
                sim, network, server_machine, mode=spec.mode,
                policy=policy, max_concurrent=spec.max_concurrent,
                **server_kwargs,
            )
            nics[name] = Link(f"{name}-nic", spec.nic_bandwidth, 0.0005)
            stats[name] = sim_servers[name].machine.stats_window()
            LoadSampler(sim, sim_servers[name].machine, stats[name])

        site_links = {
            name: Link(f"{name}-uplink", site.bandwidth, site.latency)
            for name, site in self.sites.items()
        }

        all_clients: dict[str, list[WorkloadClient]] = {
            name: [] for name in self.servers
        }
        client_id = 0
        for group in self.clients:
            server_spec = self.servers[group.server]
            server_machine = machine(server_spec.machine)
            call_spec = group.workload.build(server_machine)
            for _ in range(group.count):
                links = []
                if group.site == "lan":
                    bandwidth = ftp_throughput(group.client_machine,
                                               server_spec.machine)
                    links.append(Link(f"access{client_id}", bandwidth,
                                      0.0005))
                else:
                    site = self.sites[group.site]
                    if site.stream_ceiling is not None:
                        links.append(Link(f"stream{client_id}",
                                          site.stream_ceiling, 0.0))
                    links.append(site_links[group.site])
                links.append(nics[group.server])
                route = Route(links, name=f"c{client_id}->{group.server}")
                all_clients[group.server].append(
                    WorkloadClient(sim, client_id, sim_servers[group.server],
                                   route, call_spec, s=group.s, p=group.p,
                                   horizon=self.horizon, seed=seed,
                                   site=group.site, pooled=group.pooled,
                                   pooled_setup=group.pooled_setup)
                )
                client_id += 1

        sim.run(until=self.horizon)
        flat = [c for group in all_clients.values() for c in group]
        while any(c.process.alive for c in flat):
            if not sim.step():  # pragma: no cover
                break

        rows: dict[str, TableRow] = {}
        records: dict[str, list[SimCallRecord]] = {}
        for name in self.servers:
            server_records = []
            for client in all_clients[name]:
                server_records.extend(client.records)
            server_records.sort(key=lambda r: r.submit_time)
            records[name] = server_records
            rows[name] = aggregate(server_records, n=None,
                                   c=len(all_clients[name]),
                                   stats=stats[name])
        result = ScenarioResult(rows=rows, records=records)
        by_site: dict[str, list[float]] = {}
        for server_records in records.values():
            for record in server_records:
                by_site.setdefault(record.site, []).append(record.throughput)
        result.per_site_throughput = {
            site: sum(v) / len(v) for site, v in by_site.items() if v
        }
        return result
