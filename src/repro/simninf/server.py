"""The simulated Ninf computational server.

Executes the full call path of the real server
(:mod:`repro.server.server`) against simulated time: accept, fork,
argument upload over contended network flows, PE-pool computation
(task- or data-parallel), result download.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.model.machines import MachineSpec
from repro.model.perf import DEFAULT_T_COMM0
from repro.obs import Tracer, current_tracer
from repro.obs.trace import (
    SPAN_COMPUTE,
    SPAN_CONNECT,
    SPAN_MARSHAL,
    SPAN_QUEUE,
    SPAN_RECV,
    SPAN_ROOT,
    SPAN_SEND,
    SPAN_UNMARSHAL,
)
from repro.server.scheduling import SchedulingPolicy
from repro.sim.engine import AllOf, Signal, Simulator
from repro.sim.machine import Machine
from repro.sim.network import Network, Route
from repro.simninf.calls import CallSpec, SimCallRecord

__all__ = ["SimNinfServer"]


class _QueuedJob:
    """Admission-queue entry; duck-types SchedulableJob for policies."""

    __slots__ = ("seq", "pes_required", "predicted_cost", "grant")

    def __init__(self, sim: Simulator, seq: int, pes_required: int,
                 predicted_cost: Optional[float]):
        self.seq = seq
        self.pes_required = pes_required
        self.predicted_cost = predicted_cost
        self.grant = Signal(sim)


class SimNinfServer:
    """A Ninf server bound to a simulated machine and network.

    Parameters
    ----------
    mode:
        ``"task"``: each call computes on one PE (the 1-PE tables);
        concurrent calls processor-share the PE pool.
        ``"data"``: each call uses the optimized all-PE library and the
        compute phases serialize FCFS (the 4-PE tables) -- while
        "communication with clients could be overlapped" (§4.2.1),
        which this model preserves because transfers are network flows.
    t_setup:
        Per-call connection + two-stage-RPC setup time (the model's
        ``T_comm0``), split evenly between upload and download phases.
    tracer:
        A :class:`~repro.obs.Tracer` (ideally built with the sim clock:
        ``Tracer(clock=lambda: sim.now, clock_name="sim")``).  Every
        simulated call then emits the same OBSERVABILITY.md span schema
        as the live :class:`~repro.client.NinfClient`; defaults to the
        process-wide :func:`~repro.obs.current_tracer`, resolved per
        call (the ``ninf-experiment --trace`` hook).
    """

    def __init__(self, sim: Simulator, network: Network, spec: MachineSpec,
                 mode: str = "task", t_setup: float = DEFAULT_T_COMM0,
                 load_tau: float = 60.0,
                 switch_overhead: float = 0.0,
                 policy: Optional[SchedulingPolicy] = None,
                 max_concurrent: Optional[int] = None,
                 max_queued: Optional[int] = None,
                 dedup: bool = True,
                 tracer: Optional[Tracer] = None):
        if mode not in ("task", "data"):
            raise ValueError(f"mode must be 'task' or 'data', got {mode!r}")
        self.sim = sim
        self.network = network
        self.spec = spec
        self.mode = mode
        self.t_setup = t_setup
        self.machine = Machine(sim, spec.name, spec.num_pes,
                               switch_overhead=switch_overhead,
                               load_tau=load_tau)
        self.calls_completed = 0
        # Optional admission control (§5.2): when set, at most
        # ``max_concurrent`` executables run at once and the queue is
        # ordered by ``policy`` (FCFS = the 1997 server; SJF = the
        # paper's proposed improvement using CalcOrder predictions).
        # The default (None) is the 1997 fork-on-arrival behaviour.
        self.policy = policy
        self.max_concurrent = max_concurrent
        # Overload shedding (DESIGN.md §3.5): with ``max_queued`` set,
        # a call arriving while ``capacity + max_queued`` calls are
        # already in flight is refused at the door (outcome "shed",
        # the live server's BUSY reply) instead of joining the
        # processor-share pile-up.  None = today's accept-everything.
        self.max_queued = max_queued
        # Exactly-once analogue: with ``dedup`` on, a client whose
        # reply frame was lost may call :meth:`replay_result` instead
        # of re-executing (the live DedupCache replay path).
        self.dedup = dedup
        self.alive = True
        self.shed = 0
        self.replays = 0
        self._inflight = 0
        self.tracer = tracer
        self._admission_queue: list[_QueuedJob] = []
        self._admitted = 0
        self._admission_seq = 0

    # -- resilience knobs ---------------------------------------------------

    def kill(self) -> None:
        """Take the server down: subsequent arrivals get outcome "dead"."""
        self.alive = False

    def _capacity(self) -> int:
        """Concurrent calls the PE pool absorbs without queueing."""
        return self.spec.num_pes if self.mode == "task" else 1

    def _shed_hint(self, spec: CallSpec) -> float:
        """The BUSY retry-after estimate: backlog x service time / PEs."""
        service = spec.comp_seconds(self.mode == "data")
        return service * self._inflight / max(1, self._capacity())

    # -- admission control --------------------------------------------------

    def _admit(self, predicted_cost: Optional[float],
               pes_required: int) -> Generator:
        """Wait for PE slots under the configured policy.

        ``max_concurrent`` counts PE-slots: a width-w job consumes w of
        them, so FCFS exhibits the §5.3 head-of-line blocking on wide
        jobs and FPFS can backfill narrow ones.
        """
        if self.max_concurrent is None or self.policy is None:
            return
        job = _QueuedJob(self.sim, self._admission_seq, pes_required,
                         predicted_cost)
        self._admission_seq += 1
        self._admission_queue.append(job)
        self._dispatch_admissions()
        yield job.grant

    def _release_admission(self, pes_required: int) -> None:
        if self.max_concurrent is None or self.policy is None:
            return
        self._admitted -= pes_required
        self._dispatch_admissions()

    def _dispatch_admissions(self) -> None:
        while self._admitted < self.max_concurrent and self._admission_queue:
            free = self.max_concurrent - self._admitted
            index = self.policy.select(self._admission_queue, free)
            if index is None:
                return
            job = self._admission_queue.pop(index)
            self._admitted += job.pes_required
            job.grant.fire()

    def execute_call(self, record: SimCallRecord, route: Route,
                     t_setup: Optional[float] = None) -> Generator:
        """Process body of one Ninf_call; fills in the record's times.

        ``t_setup`` overrides the server-wide per-call setup cost for
        this call only -- how pooled clients model an already-open
        connection (the TCP handshake + two-stage-RPC setup collapses
        to the residual the caller passes, typically 0).
        """
        sim = self.sim
        spec = record.spec
        setup = self.t_setup if t_setup is None else t_setup
        # Request packet reaches the server; acceptance stamps T_enqueue.
        yield sim.timeout(route.latency + setup / 2)
        record.enqueue_time = sim.now
        if not self.alive:
            record.outcome = "dead"
            record.complete_time = sim.now
            return record
        if (self.max_queued is not None
                and self._inflight >= self._capacity() + self.max_queued):
            # Admission refuses at the door (the live server's BUSY).
            self.shed += 1
            record.outcome = "shed"
            record.retry_after = self._shed_hint(spec)
            record.complete_time = sim.now
            return record
        self._inflight += 1
        # Optional admission control (SJF etc.) queues here (§5.2).
        if spec.pes is not None:
            pes_required = spec.pes
        else:
            pes_required = self.spec.num_pes if self.mode == "data" else 1
        yield from self._admit(spec.work_units, pes_required)
        # fork & exec of the Ninf executable stamps T_dequeue.
        yield sim.timeout(self.spec.fork_overhead)
        record.dequeue_time = sim.now
        # Argument upload: a network flow pipelined with server-side
        # unmarshalling, which burns PE time (scalar XDR/TCP processing;
        # this is what saturates the J90's CPU in Tables 3/4).
        comm_start = sim.now
        yield from self._transfer(route, spec.input_bytes)
        record.comm_seconds += sim.now - comm_start
        upload_end = sim.now
        # Computation on the PE pool.
        if pes_required >= self.spec.num_pes and self.spec.num_pes > 1:
            work = spec.comp_seconds(data_parallel=True) * self.spec.num_pes
            yield from self.machine.run_serialized(work)
        else:
            work = spec.comp_seconds(data_parallel=False)
            yield from self.machine.run(work, max_pes=float(pes_required))
        compute_end = sim.now
        if not self.alive:
            # Killed mid-call: the computed result never leaves the host.
            self._inflight -= 1
            self._release_admission(pes_required)
            record.outcome = "dead"
            record.complete_time = sim.now
            return record
        # Result download (marshalling again pipelined).
        comm_start = sim.now
        yield from self._transfer(route, spec.output_bytes)
        yield sim.timeout(setup / 2)
        record.comm_seconds += sim.now - comm_start
        record.complete_time = sim.now
        record.outcome = "ok"
        self.calls_completed += 1
        self._inflight -= 1
        self._release_admission(pes_required)
        self._emit_trace(record, upload_end, compute_end)
        return record

    def replay_result(self, record: SimCallRecord, route: Route,
                      t_setup: Optional[float] = None) -> Generator:
        """Re-deliver a completed call's cached reply (dedup hit).

        The live analogue: a retried CALL whose ``logical_id`` is
        already "done" in the server's :class:`~repro.server.DedupCache`
        pays connection + result download, never queue or compute.
        """
        sim = self.sim
        setup = self.t_setup if t_setup is None else t_setup
        yield sim.timeout(route.latency + setup / 2)
        comm_start = sim.now
        yield from self._transfer(route, record.spec.output_bytes)
        yield sim.timeout(setup / 2)
        record.comm_seconds += sim.now - comm_start
        record.complete_time = sim.now
        record.outcome = "ok"
        self.replays += 1
        return record

    def _emit_trace(self, record: SimCallRecord, upload_end: float,
                    compute_end: float) -> None:
        """Emit the OBSERVABILITY.md span schema for one finished call.

        Everything is recorded retroactively from simulated timestamps,
        so the spans carry ``clock="sim"`` regardless of the tracer's
        own clock.  Marshalling is folded into the transfer flows by the
        model (:meth:`_transfer` pipelines it with the wire transfer),
        so ``call.marshal``/``call.unmarshal`` are emitted as
        zero-duration markers -- keeping the live and simulated schemas
        identical without inventing a phase the model does not resolve.
        """
        tracer = self.tracer if self.tracer is not None else current_tracer()
        trace = tracer.trace(SPAN_ROOT, start=record.submit_time,
                             function=record.spec.name,
                             client_id=record.client_id, source="sim")
        root = getattr(trace, "root", None)
        if root is not None:
            root.clock = "sim"
        submit, enqueue = record.submit_time, record.enqueue_time
        dequeue, complete = record.dequeue_time, record.complete_time
        trace.record(SPAN_MARSHAL, submit, submit, clock="sim")
        trace.record(SPAN_CONNECT, submit, enqueue, clock="sim")
        trace.record(SPAN_QUEUE, enqueue, dequeue, clock="sim")
        trace.record(SPAN_SEND, dequeue, upload_end, clock="sim")
        trace.record(SPAN_COMPUTE, upload_end, compute_end, clock="sim")
        trace.record(SPAN_RECV, compute_end, complete, clock="sim")
        trace.record(SPAN_UNMARSHAL, complete, complete, clock="sim")
        trace.end(at=complete, status="ok")

    def _transfer(self, route, nbytes: float) -> Generator:
        """One direction of data movement: flow + marshalling in parallel.

        The transfer completes when both the wire transfer and the
        server-side (un)marshalling are done; if the PEs are busy the
        marshalling stage stretches, throttling the effective transfer
        rate -- the coupling that makes heavily loaded servers slow
        communicators in the paper's tables.
        """
        if nbytes <= 0:
            return
        flow = self.network.transfer(route, nbytes)
        marshal_work = nbytes / self.spec.xdr_bandwidth
        marshal = self.sim.process(
            self.machine.run(marshal_work, max_pes=1.0, threads=1),
            name=f"{self.spec.name}-marshal",
        )
        yield AllOf([flow, marshal])
