"""Workload descriptors and per-call measurement records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.machines import MachineSpec
from repro.model.perf import EPModel, LinpackModel

__all__ = ["CallSpec", "SimCallRecord", "ep_spec", "linpack_spec"]


@dataclass(frozen=True)
class CallSpec:
    """What one Ninf_call ships and computes.

    ``comp_seconds_1pe`` is the computation time on one dedicated PE of
    the target server; data-parallel execution divides it by the
    speedup implied by the machine's all-PE model (captured in
    ``comp_seconds_allpe``).
    """

    name: str
    input_bytes: float
    output_bytes: float
    comp_seconds_1pe: float
    comp_seconds_allpe: float
    work_units: float  # flops for Linpack, 2^(m+1) ops for EP
    # Per-call PE width override (None = the server mode decides); used
    # by the §5.3 mixed-width scheduling ablations.
    pes: Optional[int] = None

    @property
    def comm_bytes(self) -> float:
        return self.input_bytes + self.output_bytes

    def comp_seconds(self, data_parallel: bool) -> float:
        """Compute time for the chosen execution style."""
        return self.comp_seconds_allpe if data_parallel else self.comp_seconds_1pe

    def with_pes(self, pes: int) -> "CallSpec":
        """Copy of this spec pinned to a fixed PE width."""
        from dataclasses import replace

        return replace(self, pes=pes)


def linpack_spec(server: MachineSpec, n: int) -> CallSpec:
    """The remote Linpack call of §3.1 on ``server``."""
    model_1pe = LinpackModel(server, pes=1)
    model_allpe = LinpackModel(server, pes=server.num_pes)
    return CallSpec(
        name=f"linpack(n={n})",
        input_bytes=model_1pe.input_bytes(n),
        output_bytes=model_1pe.output_bytes(n),
        comp_seconds_1pe=model_1pe.comp_time(n),
        comp_seconds_allpe=model_allpe.comp_time(n),
        work_units=model_1pe.flops(n),
    )


def ep_spec(server: MachineSpec, m: int = 24) -> CallSpec:
    """The remote EP call of §4.3: 2^m pairs, O(1) communication."""
    model = EPModel(server, m=m)
    return CallSpec(
        name=f"ep(m={m})",
        input_bytes=model.request_bytes,
        output_bytes=model.reply_bytes,
        comp_seconds_1pe=model.comp_time(pes=1),
        comp_seconds_allpe=model.comp_time(pes=server.num_pes),
        work_units=model.operations(),
    )


@dataclass
class SimCallRecord:
    """One completed simulated Ninf_call: the paper's measured times."""

    spec: CallSpec
    client_id: int
    submit_time: float
    enqueue_time: float = 0.0
    dequeue_time: float = 0.0
    complete_time: float = 0.0
    comm_seconds: float = 0.0  # measured transfer time (both directions)
    site: str = "lan"
    # Resilience accounting (DESIGN.md §3.5): "ok" once a reply reached
    # the client, "shed" when admission refused the attempt (BUSY),
    # "dead" when the server was down.  ``retry_after`` carries the
    # server's estimated-wait hint alongside a shed.
    outcome: str = "ok"
    retry_after: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.complete_time - self.submit_time

    @property
    def response(self) -> float:
        """The paper's T_response = T_enqueue - T_submit."""
        return self.enqueue_time - self.submit_time

    @property
    def wait(self) -> float:
        """The paper's T_wait = T_dequeue - T_enqueue."""
        return self.dequeue_time - self.enqueue_time

    @property
    def performance(self) -> float:
        """P_ninf_call = work / elapsed (flop/s or ops/s)."""
        if self.elapsed <= 0:
            return float("inf")
        return self.spec.work_units / self.elapsed

    @property
    def throughput(self) -> float:
        """Communication throughput (bytes/s over the transfer phases,
        marshalling included) -- the paper's Throughput column."""
        if self.comm_seconds <= 0:
            return float("inf")
        return self.spec.comm_bytes / self.comm_seconds
