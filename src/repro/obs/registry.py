"""Lock-safe in-process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is the single place a process accumulates
operational numbers.  Three instrument kinds cover the reproduction's
needs (the naming and exposition conventions are specified in
OBSERVABILITY.md):

- :class:`Counter` -- monotonically increasing totals (bytes sent,
  faults injected, calls completed).
- :class:`Gauge` -- a value that goes both ways (queue depth, idle
  connections).
- :class:`Histogram` -- fixed-bucket distributions with count/sum and
  a quantile *estimate* by linear interpolation inside the bucket that
  crosses the requested rank (dispatch latency, per-function service
  time).

Every instrument supports label dimensions declared at registration
time; a labelled instrument is a family of children keyed by the label
values.  All mutation is lock-protected, so server handler threads may
increment concurrently.

Exposition is zero-dependency: :meth:`MetricsRegistry.render_prometheus`
emits the Prometheus text format (families sorted by name, children by
label values, so output is deterministic and golden-testable) and
:meth:`MetricsRegistry.snapshot` emits a JSON-able dict -- the payload
of the ``STATS`` protocol op (see OBSERVABILITY.md and DESIGN.md §3.3).

Registries are deliberately *instance-scoped*, not a process-global
singleton: each :class:`~repro.client.NinfClient`, server, and pool
owns (or is handed) one, which keeps per-client counter semantics
exact and tests isolated.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

# Default histogram upper bounds (seconds-flavoured, like Prometheus
# client defaults): sub-millisecond through minutes, +Inf implicit.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST \
            or any(ch not in _VALID_REST for ch in name[1:]):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labelnames: Sequence[str], labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[n]) for n in labelnames)


def _render_labels(labelnames: Sequence[str], key: tuple,
                   extra: Optional[tuple[str, str]] = None) -> str:
    pairs = [(n, v) for n, v in zip(labelnames, key)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{n}="{_escape(v)}"' for n, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Common machinery: a named, labelled family of child values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, float] = {}

    def _key(self, labels: dict) -> tuple:
        return _label_key(self.labelnames, labels)

    def value(self, **labels) -> float:
        """Current value of the child addressed by ``labels``."""
        with self._lock:
            return self._children.get(self._key(labels), 0.0)

    def labelsets(self) -> list[tuple]:
        """Every label-value tuple this family has seen, sorted."""
        with self._lock:
            return sorted(self._children)


class Counter(_Instrument):
    """A monotonically increasing total; decrements are rejected."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the addressed child."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def snapshot(self) -> dict:
        """JSON-able form: {"type", "help", "labels", "values"}."""
        with self._lock:
            values = dict(self._children)
        return _scalar_snapshot(self, values)

    def render(self) -> list[str]:
        """Prometheus text lines for this family."""
        return _scalar_render(self)


class Gauge(_Instrument):
    """A value that can rise and fall (queue depth, idle connections)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Replace the addressed child's value."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the addressed child."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from the addressed child."""
        self.inc(-amount, **labels)

    def snapshot(self) -> dict:
        """JSON-able form: {"type", "help", "labels", "values"}."""
        with self._lock:
            values = dict(self._children)
        return _scalar_snapshot(self, values)

    def render(self) -> list[str]:
        """Prometheus text lines for this family."""
        return _scalar_render(self)


class _HistChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, nbuckets: int):
        self.counts = [0] * (nbuckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram with quantile estimation.

    ``buckets`` are the inclusive upper bounds of each bucket
    (``observe(v)`` lands in the first bucket with ``v <= bound``); a
    final ``+Inf`` bucket is implicit, so no observation is ever
    dropped.  Quantiles are *estimates*: linear interpolation between
    the lower and upper bound of the bucket containing the requested
    rank, with the +Inf bucket clamped to the largest finite bound
    (the standard Prometheus ``histogram_quantile`` behaviour).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b != b or b == math.inf for b in bounds):
            raise ValueError("bucket bounds must be finite numbers")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        self.buckets = bounds
        self._children: dict[tuple, _HistChild] = {}

    def _child_locked(self, labels: dict) -> _HistChild:
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistChild(len(self.buckets))
        return child

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the bucketed distribution."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            child = self._child_locked(labels)
            child.counts[index] += 1
            child.sum += value
            child.count += 1

    def count(self, **labels) -> int:
        """Total observations recorded for the addressed child."""
        with self._lock:
            child = self._children.get(self._key(labels))
            return 0 if child is None else child.count

    def total(self, **labels) -> float:
        """Sum of all observed values for the addressed child."""
        with self._lock:
            child = self._children.get(self._key(labels))
            return 0.0 if child is None else child.sum

    def value(self, **labels) -> float:
        """The mean observation (sum/count); 0.0 when empty."""
        with self._lock:
            child = self._children.get(self._key(labels))
        if child is None or child.count == 0:
            return 0.0
        return child.sum / child.count

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) by bucket
        interpolation; ``nan`` when no observations exist."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            child = self._children.get(self._key(labels))
            counts = None if child is None else list(child.counts)
            total = 0 if child is None else child.count
        if not total:
            return math.nan
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                within = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(within, 0.0), 1.0)
        return self.buckets[-1]  # pragma: no cover - rank <= total always

    def snapshot(self) -> dict:
        """JSON-able form including per-bucket cumulative counts."""
        with self._lock:
            items = [(key, list(child.counts), child.sum, child.count)
                     for key, child in sorted(self._children.items())]
        values = []
        for key, counts, total, count in items:
            cumulative, running = [], 0
            for c in counts:
                running += c
                cumulative.append(running)
            values.append({
                "labels": dict(zip(self.labelnames, key)),
                "buckets": cumulative,
                "bounds": list(self.buckets),
                "sum": total,
                "count": count,
            })
        return {"type": self.kind, "help": self.help,
                "labelnames": list(self.labelnames), "values": values}

    def labelsets(self) -> list[tuple]:
        """Every label-value tuple this family has seen, sorted."""
        with self._lock:
            return sorted(self._children)

    def render(self) -> list[str]:
        """Prometheus text lines (``_bucket``/``_sum``/``_count``)."""
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            items = [(key, list(child.counts), child.sum, child.count)
                     for key, child in sorted(self._children.items())]
        for key, counts, total, count in items:
            running = 0
            for bound, bucket_count in zip(
                    list(self.buckets) + [math.inf], counts):
                running += bucket_count
                labels = _render_labels(self.labelnames, key,
                                        extra=("le", _format_value(bound)))
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{labels} {_format_value(total)}")
            lines.append(f"{self.name}_count{labels} {count}")
        return lines


def _scalar_snapshot(instrument: _Instrument, values: dict) -> dict:
    return {
        "type": instrument.kind,
        "help": instrument.help,
        "labelnames": list(instrument.labelnames),
        "values": [
            {"labels": dict(zip(instrument.labelnames, key)),
             "value": value}
            for key, value in sorted(values.items())
        ],
    }


def _scalar_render(instrument: _Instrument) -> list[str]:
    lines = [f"# HELP {instrument.name} {instrument.help}",
             f"# TYPE {instrument.name} {instrument.kind}"]
    with instrument._lock:
        items = sorted(instrument._children.items())
    for key, value in items:
        labels = _render_labels(instrument.labelnames, key)
        lines.append(f"{instrument.name}{labels} {_format_value(value)}")
    return lines


class MetricsRegistry:
    """A named collection of instruments with deterministic exposition.

    ``counter``/``gauge``/``histogram`` are idempotent get-or-create
    calls: asking for an existing name returns the existing instrument
    (so independent modules can share a family), while asking for an
    existing name with a *different* kind or label set raises -- silent
    type confusion is how metric bugs hide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name!r} already registered as {existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"{name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help=help, labelnames=labelnames,
                             **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument called ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict:
        """JSON-able dict of every instrument (the STATS payload)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument.snapshot()
                for name, instrument in instruments}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, newline-terminated.

        Families are sorted by name and children by label values, so
        equal registry states render byte-identically (golden-testable).
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: list[str] = []
        for _name, instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + ("\n" if lines else "")
