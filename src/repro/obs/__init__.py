"""``repro.obs``: the observability layer (metrics + tracing).

One subsystem replaces the reproduction's three divergent ad-hoc
measurement mechanisms (client counters, pool counters, simulator
record fields):

- :class:`MetricsRegistry` -- lock-safe counters, gauges, and
  fixed-bucket histograms with Prometheus-text and JSON snapshot
  exposition (:mod:`repro.obs.registry`).
- :class:`Tracer`/:class:`Trace`/:class:`Span` -- per-call span trees
  with explicit clock injection, emitted identically by the live RPC
  stack and the simulator (:mod:`repro.obs.trace`).
- :data:`METRIC_NAMES` / :data:`SPAN_NAMES` -- the canonical name
  registries that OBSERVABILITY.md documents and the CI docs check
  enforces (:mod:`repro.obs.names`).

See OBSERVABILITY.md for the full schema, naming conventions, and a
worked end-to-end example; DESIGN.md §3.3 for the architecture.
"""

from repro.obs.names import METRIC_NAMES
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    PHASE_OF_SPAN,
    SPAN_FIELDS,
    SPAN_NAMES,
    Span,
    Trace,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_NAMES",
    "MetricsRegistry",
    "NULL_TRACER",
    "PHASE_OF_SPAN",
    "SPAN_FIELDS",
    "SPAN_NAMES",
    "Span",
    "Trace",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
