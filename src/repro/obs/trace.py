"""Span-based tracing with explicit clock injection.

One ``Ninf_call`` becomes one :class:`Trace`: a root ``ninf.call`` span
plus child spans for every phase of the call path (marshal, connect,
send, queue, compute, recv, unmarshal -- the taxonomy is specified in
OBSERVABILITY.md and pinned by :data:`SPAN_NAMES`).  The same schema is
emitted by the live RPC stack (:class:`~repro.client.NinfClient`,
wall clock) and by the simulator
(:class:`~repro.simninf.server.SimNinfServer`, simulated clock), so
live and simulated traces are directly comparable and one breakdown
pipeline (:mod:`repro.experiments.breakdown`) renders both.

Clock injection rules (see OBSERVABILITY.md §"Clocks"):

- A :class:`Tracer` owns a clock (``clock`` callable + ``clock_name``).
  Spans opened via :meth:`Trace.span` read it; spans recorded
  retroactively via :meth:`Trace.record` carry explicit timestamps.
- Timestamps are *clock-local*; only durations are comparable across
  clocks.  Each span names its clock in the ``clock`` field (``wall``,
  ``sim``, or ``server-wall`` for spans rebuilt from a server's
  :class:`~repro.protocol.messages.JobTimestamps`).

Use :func:`use_tracer` to install a process-wide active tracer that
instrumented components fall back to when none is passed explicitly --
this is how ``ninf-experiment --trace`` captures spans from existing
experiment drivers without threading a tracer through every layer.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from contextlib import contextmanager

__all__ = [
    "NULL_TRACER",
    "PHASE_OF_SPAN",
    "SPAN_FIELDS",
    "SPAN_NAMES",
    "Span",
    "Trace",
    "Tracer",
    "current_tracer",
    "use_tracer",
]

# The span taxonomy: every span a Ninf trace may contain.  The docs
# checker (tests/test_docs_consistency.py) asserts each name is
# documented in OBSERVABILITY.md; the schema-equality test asserts live
# and simulated traces draw from this same set.
SPAN_ROOT = "ninf.call"
SPAN_MARSHAL = "call.marshal"
SPAN_CONNECT = "call.connect"
SPAN_SEND = "call.send"
SPAN_QUEUE = "call.queue"
SPAN_COMPUTE = "call.compute"
SPAN_RECV = "call.recv"
SPAN_UNMARSHAL = "call.unmarshal"

SPAN_NAMES = (SPAN_ROOT, SPAN_MARSHAL, SPAN_CONNECT, SPAN_SEND,
              SPAN_QUEUE, SPAN_COMPUTE, SPAN_RECV, SPAN_UNMARSHAL)

# Phase classification used by the breakdown pipeline: everything that
# is not queue or compute is transfer (the paper's "communication"
# includes marshalling and connection setup).
PHASE_OF_SPAN = {
    SPAN_ROOT: "total",
    SPAN_MARSHAL: "transfer",
    SPAN_CONNECT: "transfer",
    SPAN_SEND: "transfer",
    SPAN_QUEUE: "queue",
    SPAN_COMPUTE: "compute",
    SPAN_RECV: "transfer",
    SPAN_UNMARSHAL: "transfer",
}

# The fixed top-level keys of an exported span dict; attrs is the open
# extension point.  The live-vs-sim schema test compares these.
SPAN_FIELDS = ("trace_id", "span_id", "parent_id", "name", "start",
               "end", "duration", "clock", "attrs")

_ids = itertools.count(1)


@dataclass
class Span:
    """One timed phase of a trace.

    ``start``/``end`` are clock-local timestamps (see the module
    docstring); ``clock`` names the clock they were read from.
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    clock: str
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in (clock-local) seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """The canonical exported form (keys = :data:`SPAN_FIELDS`)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
            "attrs": dict(self.attrs),
        }


class Trace:
    """One call's span tree: a root span plus phase children.

    Created by :meth:`Tracer.trace`; finished with :meth:`end` (or by
    using the trace as a context manager).  Children are added either
    live (:meth:`span`, reads the tracer clock on entry and exit) or
    retroactively (:meth:`record`, explicit timestamps -- how server-
    clock and simulated-time spans enter a trace).
    """

    def __init__(self, tracer: "Tracer", name: str, start: float,
                 attrs: dict):
        self.tracer = tracer
        self.trace_id = next(_ids)
        self.root = Span(trace_id=self.trace_id, span_id=next(_ids),
                         parent_id=None, name=name, start=start,
                         end=start, clock=tracer.clock_name, attrs=attrs)
        self._ended = False

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Context manager timing one child span on the tracer clock.

        An exception escaping the block stamps ``status="error"`` on
        the span and re-raises; the span is recorded either way.
        """
        child = Span(trace_id=self.trace_id, span_id=next(_ids),
                     parent_id=self.root.span_id, name=name,
                     start=self.tracer.clock(), end=0.0,
                     clock=self.tracer.clock_name, attrs=attrs)
        try:
            yield child
        except BaseException:
            child.attrs["status"] = "error"
            raise
        finally:
            child.end = self.tracer.clock()
            self.tracer._emit(child)

    def record(self, name: str, start: float, end: float,
               clock: Optional[str] = None, **attrs) -> Span:
        """Add a child span with explicit timestamps.

        ``clock`` overrides the tracer's clock name -- e.g. a live
        trace records ``call.queue`` from server-side timestamps with
        ``clock="server-wall"``.
        """
        child = Span(trace_id=self.trace_id, span_id=next(_ids),
                     parent_id=self.root.span_id, name=name,
                     start=start, end=end,
                     clock=clock or self.tracer.clock_name, attrs=attrs)
        self.tracer._emit(child)
        return child

    def end(self, at: Optional[float] = None, **attrs) -> Span:
        """Close the root span (idempotent) and emit it."""
        if self._ended:
            return self.root
        self._ended = True
        self.root.end = self.tracer.clock() if at is None else at
        self.root.attrs.update(attrs)
        self.tracer._emit(self.root)
        return self.root

    def __enter__(self) -> "Trace":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.end(**({"status": "error"} if exc_type else {}))


# What _NullTrace hands back: a single throwaway span, so its method
# signatures match Trace exactly (mypy --strict checks the overrides).
_NULL_SPAN = Span(trace_id=0, span_id=0, parent_id=None, name="null",
                  start=0.0, end=0.0, clock="null")


class _NullTrace(Trace):
    """Trace that records nothing; keeps instrumented code branch-free."""

    def __init__(self) -> None:  # noqa: D107 - no tracer to bind
        pass

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """No-op child span."""
        yield _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               clock: Optional[str] = None, **attrs) -> Span:
        """No-op retro span."""
        return _NULL_SPAN

    def end(self, at: Optional[float] = None, **attrs) -> Span:
        """No-op close."""
        return _NULL_SPAN

    def __exit__(self, exc_type, *exc_info) -> None:
        pass


_NULL_TRACE = _NullTrace()


class Tracer:
    """Collects finished spans; owns the clock they are stamped with.

    Parameters
    ----------
    clock:
        Callable returning the current time in seconds.  Wall-clock
        tracers use ``time.monotonic`` (the default); simulated tracers
        inject ``lambda: sim.now``.
    clock_name:
        The name stamped into each span's ``clock`` field (``"wall"``,
        ``"sim"``, ...).
    enabled:
        ``False`` builds the null tracer: :meth:`trace` returns a
        no-op trace, nothing is collected.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 clock_name: str = "wall", enabled: bool = True):
        self.clock = clock
        self.clock_name = clock_name
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def trace(self, name: str = SPAN_ROOT,
              start: Optional[float] = None, **attrs) -> Trace:
        """Open a new trace whose root span is ``name``."""
        if not self.enabled:
            return _NULL_TRACE
        at = self.clock() if start is None else start
        return Trace(self, name, at, attrs)

    def _emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        """Snapshot of every finished span collected so far."""
        with self._lock:
            return list(self._spans)

    def export(self) -> list[dict]:
        """Every collected span as a JSON-able dict, in emit order."""
        with self._lock:
            return [span.to_dict() for span in self._spans]

    def save(self, path: str) -> int:
        """Write the export as JSON lines; returns the span count."""
        spans = self.export()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span) + "\n")
        return len(spans)

    def clear(self) -> None:
        """Drop every collected span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


NULL_TRACER = Tracer(enabled=False)

_active_lock = threading.Lock()
_active_tracer: Optional[Tracer] = None


def current_tracer() -> Tracer:
    """The process-wide active tracer (:data:`NULL_TRACER` if none).

    Instrumented components that were not handed a tracer explicitly
    fall back to this -- the hook behind ``ninf-experiment --trace``.
    """
    with _active_lock:
        return _active_tracer if _active_tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-wide active tracer.

    Process-wide, not thread-local, because a live RPC call path spans
    several threads; nest scopes only from one controlling thread.
    """
    global _active_tracer
    with _active_lock:
        previous, _active_tracer = _active_tracer, tracer
    try:
        yield tracer
    finally:
        with _active_lock:
            _active_tracer = previous
