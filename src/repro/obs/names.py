"""The canonical registry of exported metric names.

Every metric any repro component registers is declared here as a
constant and listed in :data:`METRIC_NAMES`.  Two things key off this
module:

- instrumented components import the constants instead of retyping
  strings, so a renamed metric is renamed everywhere;
- the docs-consistency check (``tests/test_docs_consistency.py``)
  asserts every name in :data:`METRIC_NAMES` is documented in
  OBSERVABILITY.md, and fails CI when a metric is added without docs.

Naming convention (OBSERVABILITY.md §"Metric naming"):
``ninf_<subsystem>_<quantity>[_<unit>][_total]`` -- ``_total`` marks
counters, ``_seconds``/``_bytes`` mark units, gauges carry neither.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES"]

# -- transport: Channel framed I/O (per pool/endpoint registry) ----------
TRANSPORT_BYTES_SENT = "ninf_transport_bytes_sent_total"
TRANSPORT_BYTES_RECEIVED = "ninf_transport_bytes_received_total"
TRANSPORT_FRAMES_SENT = "ninf_transport_frames_sent_total"
TRANSPORT_FRAMES_RECEIVED = "ninf_transport_frames_received_total"

# -- transport: ConnectionPool ------------------------------------------
POOL_CONNECTIONS_CREATED = "ninf_pool_connections_created_total"
POOL_CONNECTIONS_REUSED = "ninf_pool_connections_reused_total"
POOL_IDLE_CONNECTIONS = "ninf_pool_idle_connections"

# -- transport: fault injection and retry -------------------------------
FAULTS_INJECTED = "ninf_faults_injected_total"        # label: kind
RETRY_ATTEMPTS = "ninf_retry_attempts_total"
RETRY_RETRIES = "ninf_retry_retries_total"

# -- client -------------------------------------------------------------
CLIENT_ATTEMPTS = "ninf_client_attempts_total"
CLIENT_RETRIES = "ninf_client_retries_total"
CLIENT_FAULTS_SEEN = "ninf_client_faults_seen_total"
CLIENT_CALL_SECONDS = "ninf_client_call_seconds"      # label: function

# -- endpoint / server --------------------------------------------------
ENDPOINT_CONNECTIONS_ACCEPTED = "ninf_endpoint_connections_accepted_total"
SERVER_DISPATCH_SECONDS = "ninf_server_dispatch_seconds"
SERVER_EXECUTE_SECONDS = "ninf_server_execute_seconds"  # label: function
SERVER_QUEUE_DEPTH = "ninf_server_queue_depth"
SERVER_CALLS = "ninf_server_calls_total"        # labels: function, status

# -- metaserver ---------------------------------------------------------
METASERVER_PROBES = "ninf_metaserver_probes_total"    # label: outcome
METASERVER_SERVERS_ALIVE = "ninf_metaserver_servers_alive"

METRIC_NAMES = (
    TRANSPORT_BYTES_SENT,
    TRANSPORT_BYTES_RECEIVED,
    TRANSPORT_FRAMES_SENT,
    TRANSPORT_FRAMES_RECEIVED,
    POOL_CONNECTIONS_CREATED,
    POOL_CONNECTIONS_REUSED,
    POOL_IDLE_CONNECTIONS,
    FAULTS_INJECTED,
    RETRY_ATTEMPTS,
    RETRY_RETRIES,
    CLIENT_ATTEMPTS,
    CLIENT_RETRIES,
    CLIENT_FAULTS_SEEN,
    CLIENT_CALL_SECONDS,
    ENDPOINT_CONNECTIONS_ACCEPTED,
    SERVER_DISPATCH_SECONDS,
    SERVER_EXECUTE_SECONDS,
    SERVER_QUEUE_DEPTH,
    SERVER_CALLS,
    METASERVER_PROBES,
    METASERVER_SERVERS_ALIVE,
)
