"""The canonical registry of exported metric names.

Every metric any repro component registers is declared here as a
constant and listed in :data:`METRIC_NAMES`.  Two things key off this
module:

- instrumented components import the constants instead of retyping
  strings, so a renamed metric is renamed everywhere;
- the docs-consistency check (``tests/test_docs_consistency.py``)
  asserts every name in :data:`METRIC_NAMES` is documented in
  OBSERVABILITY.md, and fails CI when a metric is added without docs.

Naming convention (OBSERVABILITY.md §"Metric naming"):
``ninf_<subsystem>_<quantity>[_<unit>][_total]`` -- ``_total`` marks
counters, ``_seconds``/``_bytes`` mark units, gauges carry neither.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES"]

# -- transport: Channel framed I/O (per pool/endpoint registry) ----------
TRANSPORT_BYTES_SENT = "ninf_transport_bytes_sent_total"
TRANSPORT_BYTES_RECEIVED = "ninf_transport_bytes_received_total"
TRANSPORT_FRAMES_SENT = "ninf_transport_frames_sent_total"
TRANSPORT_FRAMES_RECEIVED = "ninf_transport_frames_received_total"

# -- transport: ConnectionPool ------------------------------------------
POOL_CONNECTIONS_CREATED = "ninf_pool_connections_created_total"
POOL_CONNECTIONS_REUSED = "ninf_pool_connections_reused_total"
POOL_IDLE_CONNECTIONS = "ninf_pool_idle_connections"
POOL_DIALS_REFUSED = "ninf_pool_dials_refused_total"

# -- transport: shared-memory upgrade (server-side Endpoint) ------------
SHM_UPGRADES = "ninf_shm_upgrades_total"
SHM_FALLBACKS = "ninf_shm_fallbacks_total"            # label: reason

# -- transport: fault injection and retry -------------------------------
FAULTS_INJECTED = "ninf_faults_injected_total"        # label: kind
FAULTS_PARTITION_DROPS = "ninf_faults_partition_drops_total"
RETRY_ATTEMPTS = "ninf_retry_attempts_total"
RETRY_RETRIES = "ninf_retry_retries_total"
BREAKER_TRIPS = "ninf_breaker_trips_total"

# -- client -------------------------------------------------------------
CLIENT_ATTEMPTS = "ninf_client_attempts_total"
CLIENT_RETRIES = "ninf_client_retries_total"
CLIENT_FAULTS_SEEN = "ninf_client_faults_seen_total"
CLIENT_CALL_SECONDS = "ninf_client_call_seconds"      # label: function
CLIENT_FAILOVERS = "ninf_client_failovers_total"
CLIENT_PICK_CACHE = "ninf_client_pick_cache_total"    # label: result
CLIENT_DEGRADED = "ninf_client_degraded_mode"

# -- endpoint / server --------------------------------------------------
ENDPOINT_CONNECTIONS_ACCEPTED = "ninf_endpoint_connections_accepted_total"
SERVER_DISPATCH_SECONDS = "ninf_server_dispatch_seconds"
SERVER_EXECUTE_SECONDS = "ninf_server_execute_seconds"  # label: function
SERVER_QUEUE_DEPTH = "ninf_server_queue_depth"
SERVER_CALLS = "ninf_server_calls_total"        # labels: function, status
SERVER_JOBS_EXPIRED = "ninf_server_jobs_expired_total"
SERVER_JOBS_CANCELLED = "ninf_server_jobs_cancelled_total"
SERVER_JOBS_SHED = "ninf_server_jobs_shed_total"      # label: reason
SERVER_DEDUP_HITS = "ninf_server_dedup_hits_total"
SERVER_DEDUP_ENTRIES = "ninf_server_dedup_entries"
SERVER_CONNECTIONS_OPEN = "ninf_server_connections_open"
SERVER_LOOP_LAG = "ninf_server_loop_lag_seconds"
SERVER_DETACHED_EVICTED = "ninf_server_detached_evicted_total"
SERVER_HEARTBEATS_SENT = "ninf_server_heartbeats_sent_total"  # label: outcome

# -- metaserver ---------------------------------------------------------
METASERVER_PROBES = "ninf_metaserver_probes_total"    # label: outcome
METASERVER_SERVERS_ALIVE = "ninf_metaserver_servers_alive"
METASERVER_HEARTBEATS = "ninf_metaserver_heartbeats_total"  # label: outcome
METASERVER_SERVERS_SUSPECT = "ninf_metaserver_servers_suspect"
METASERVER_GOSSIP = "ninf_metaserver_gossip_total"    # label: outcome
METASERVER_GOSSIP_APPLIED = "ninf_metaserver_gossip_deltas_applied_total"

# -- bench harness (ninf-bench rpc worker processes) --------------------
BENCH_CALLS = "ninf_bench_calls_total"                # label: outcome
BENCH_CALL_SECONDS = "ninf_bench_call_seconds"
BENCH_STAGE_CLIENTS = "ninf_bench_stage_clients"

METRIC_NAMES = (
    TRANSPORT_BYTES_SENT,
    TRANSPORT_BYTES_RECEIVED,
    TRANSPORT_FRAMES_SENT,
    TRANSPORT_FRAMES_RECEIVED,
    POOL_CONNECTIONS_CREATED,
    POOL_CONNECTIONS_REUSED,
    POOL_IDLE_CONNECTIONS,
    POOL_DIALS_REFUSED,
    SHM_UPGRADES,
    SHM_FALLBACKS,
    FAULTS_INJECTED,
    FAULTS_PARTITION_DROPS,
    RETRY_ATTEMPTS,
    RETRY_RETRIES,
    BREAKER_TRIPS,
    CLIENT_ATTEMPTS,
    CLIENT_RETRIES,
    CLIENT_FAULTS_SEEN,
    CLIENT_CALL_SECONDS,
    CLIENT_FAILOVERS,
    CLIENT_PICK_CACHE,
    CLIENT_DEGRADED,
    ENDPOINT_CONNECTIONS_ACCEPTED,
    SERVER_DISPATCH_SECONDS,
    SERVER_EXECUTE_SECONDS,
    SERVER_QUEUE_DEPTH,
    SERVER_CALLS,
    SERVER_JOBS_EXPIRED,
    SERVER_JOBS_CANCELLED,
    SERVER_JOBS_SHED,
    SERVER_DEDUP_HITS,
    SERVER_DEDUP_ENTRIES,
    SERVER_CONNECTIONS_OPEN,
    SERVER_LOOP_LAG,
    SERVER_DETACHED_EVICTED,
    SERVER_HEARTBEATS_SENT,
    METASERVER_PROBES,
    METASERVER_SERVERS_ALIVE,
    METASERVER_HEARTBEATS,
    METASERVER_SERVERS_SUSPECT,
    METASERVER_GOSSIP,
    METASERVER_GOSSIP_APPLIED,
    BENCH_CALLS,
    BENCH_CALL_SECONDS,
    BENCH_STAGE_CLIENTS,
)
