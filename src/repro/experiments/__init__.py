"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver builds a scenario from the calibrated catalogs, runs the
Ninf simulator, and returns rows/series in the paper's format.  The
mapping to the paper (see DESIGN.md §4 for the full index):

==========  =====================================================
Paper item  Driver
==========  =====================================================
Fig 3       :func:`repro.experiments.single_client.fig3_sparc_clients`
Fig 4       :func:`repro.experiments.single_client.fig4_alpha_client`
Fig 5       :func:`repro.experiments.single_client.fig5_throughput`
Table 2     :func:`repro.experiments.single_client.table2_ftp`
Table 3     :func:`repro.experiments.lan_multiclient.table3_1pe`
Table 4     :func:`repro.experiments.lan_multiclient.table4_4pe`
Fig 7       :func:`repro.experiments.lan_multiclient.fig7_surface`
Table 5     :func:`repro.experiments.lan_multiclient.table5_smp`
Table 6     :func:`repro.experiments.wan.table6_1pe`
Table 7     :func:`repro.experiments.wan.table7_4pe`
Fig 8       :func:`repro.experiments.wan.fig8_surface`
Fig 10      :func:`repro.experiments.wan.fig10_multisite`
Table 8     :func:`repro.experiments.ep.table8_ep`
Fig 11      :func:`repro.experiments.ep.fig11_metaserver`
==========  =====================================================
"""

from repro.experiments.availability import (
    AvailabilityCell,
    availability_ablation,
    format_availability,
)
from repro.experiments.breakdown import (
    CallPhases,
    PhaseBreakdown,
    breakdown_from_spans,
    format_breakdown,
    live_loopback_breakdown,
    sim_breakdown,
    summarize,
)
from repro.experiments.common import MulticlientResult, run_multiclient_cell
from repro.experiments.overload import (
    FailoverCell,
    OverloadCell,
    failover_ablation,
    format_failover,
    format_overload,
    overload_ablation,
)

__all__ = [
    "AvailabilityCell",
    "CallPhases",
    "FailoverCell",
    "MulticlientResult",
    "OverloadCell",
    "PhaseBreakdown",
    "availability_ablation",
    "breakdown_from_spans",
    "failover_ablation",
    "format_availability",
    "format_breakdown",
    "format_failover",
    "format_overload",
    "live_loopback_breakdown",
    "overload_ablation",
    "run_multiclient_cell",
    "sim_breakdown",
    "summarize",
]
