"""Availability ablation: call success under injected faults, +/- retry.

The WAN story of §6 is ultimately about what happens when the network
misbehaves; this driver makes that measurable instead of anecdotal.
Each cell runs the paper's multi-client LAN workload with the
simulator's fault knob turned up (every call attempt fails with
probability ``fault_rate``) and reports effective availability -- call
success rate -- plus the latency tail (p95 elapsed), once with bare
clients (``retry_attempts=1``) and once with retrying clients.

The real-stack analogue is a :class:`~repro.transport.FaultPlan` on a
:class:`~repro.client.NinfClient` with a
:class:`~repro.transport.RetryPolicy`; the chaos suite
(``tests/chaos``) asserts the same qualitative result over real
sockets: bare clients measurably fail, retrying clients reach 100%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import run_multiclient_cell
from repro.model.machines import machine
from repro.model.network import lan_catalog
from repro.simninf.calls import linpack_spec

__all__ = ["AvailabilityCell", "availability_ablation", "format_availability"]


@dataclass(frozen=True)
class AvailabilityCell:
    """One (fault_rate, retry) point of the availability sweep."""

    fault_rate: float
    retry_attempts: int
    calls_issued: int
    calls_completed: int
    calls_failed: int
    attempts: int
    faults_seen: int
    retries: int
    success_rate: float
    mean_elapsed: float
    p95_elapsed: float

    @property
    def retrying(self) -> bool:
        return self.retry_attempts > 1


def availability_ablation(
    fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    retry_attempts: int = 3,
    server_name: str = "j90",
    n: int = 600,
    c: int = 8,
    horizon: float = 120.0,
    seed: int = 1997,
    fault_cost: Optional[float] = None,
) -> list[AvailabilityCell]:
    """Sweep fault probability with and without client retry.

    Returns two cells per fault rate (bare then retrying), on the
    standard LAN Linpack workload.  Seeded throughout: the same
    arguments reproduce the same table exactly.
    """
    server = machine(server_name)
    client = machine("alpha")
    spec = linpack_spec(server, n)
    cells: list[AvailabilityCell] = []
    for rate in fault_rates:
        for attempts in (1, retry_attempts):
            catalog = lan_catalog(server)  # fresh links per cell

            def route_factory(net, i, _catalog=catalog, _client=client):
                return _catalog.route_for(_client, i)

            result = run_multiclient_cell(
                server, route_factory, spec, c, mode="task", n=n,
                horizon=horizon, seed=seed, fault_rate=rate,
                retry_attempts=attempts, fault_cost=fault_cost,
            )
            elapsed = [r.elapsed for r in result.records]
            cells.append(AvailabilityCell(
                fault_rate=rate,
                retry_attempts=attempts,
                calls_issued=result.calls_issued,
                calls_completed=len(result.records),
                calls_failed=result.failed_calls,
                attempts=result.call_attempts,
                faults_seen=result.faults_seen,
                retries=result.retries,
                success_rate=result.success_rate,
                mean_elapsed=float(np.mean(elapsed)) if elapsed else 0.0,
                p95_elapsed=(float(np.percentile(elapsed, 95))
                             if elapsed else 0.0),
            ))
    return cells


def format_availability(cells: Sequence[AvailabilityCell]) -> str:
    """Markdown table of the sweep (the EXPERIMENTS.md rendering)."""
    lines = [
        "| fault rate | retry | issued | completed | success | "
        "mean elapsed (s) | p95 elapsed (s) |",
        "|---|---|---|---|---|---|---|",
    ]
    for cell in cells:
        retry = f"x{cell.retry_attempts}" if cell.retrying else "off"
        lines.append(
            f"| {cell.fault_rate:.2f} | {retry} | {cell.calls_issued} "
            f"| {cell.calls_completed} | {100 * cell.success_rate:.1f}% "
            f"| {cell.mean_elapsed:.2f} | {cell.p95_elapsed:.2f} |"
        )
    return "\n".join(lines)
