"""The live-breakdown pipeline: spans -> per-call phase breakdowns.

This is the consumer end of the observability layer (OBSERVABILITY.md
§"The breakdown pipeline"): take the spans a
:class:`~repro.obs.Tracer` collected -- from the live RPC stack or from
the simulator, the schema is identical -- and render the paper-style
stacked transfer/compute/queue table (the decomposition behind Tables
3-7: communication = elapsed - wait - service).

Phase accounting is derivation, not summation of transfer spans:
``transfer = total - queue - compute``.  This is robust for both
sources -- in a live trace the ``call.recv`` window *overlaps* the
server's queue and compute phases (the client is simply waiting), so
summing transfer-phase spans would double-count; subtracting the two
exclusive phases from the root span never does.

Two convenience drivers feed the pipeline: :func:`live_loopback_breakdown`
runs real ``Ninf_call``\\ s against an in-process TCP server, and
:func:`sim_breakdown` runs a simulated multi-client cell.  Both are
what ``ninf-experiment breakdown`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.obs import Span, Tracer
from repro.obs.trace import SPAN_COMPUTE, SPAN_QUEUE, SPAN_ROOT

__all__ = [
    "CallPhases",
    "PhaseBreakdown",
    "breakdown_from_spans",
    "format_breakdown",
    "live_loopback_breakdown",
    "sim_breakdown",
    "summarize",
]


@dataclass(frozen=True)
class CallPhases:
    """The phase decomposition of one traced ``Ninf_call`` (seconds)."""

    trace_id: int
    function: str
    source: str   # "live" or "sim" (the root span's source attr)
    total: float
    queue: float
    compute: float

    @property
    def transfer(self) -> float:
        """Everything that is not queueing or computing: connection
        setup, marshalling, and wire time (the paper's communication
        term, derived as ``total - queue - compute``)."""
        return max(0.0, self.total - self.queue - self.compute)


@dataclass(frozen=True)
class PhaseBreakdown:
    """Aggregate phase breakdown over a set of calls (mean seconds)."""

    label: str
    calls: int
    total: float
    transfer: float
    queue: float
    compute: float

    def share(self, phase: str) -> float:
        """A phase's fraction of mean total time (0 when total is 0)."""
        if self.total <= 0:
            return 0.0
        return getattr(self, phase) / self.total


def _field(span: Union[Span, dict], key: str):
    """Read a span field from a Span object or an exported dict."""
    if isinstance(span, dict):
        return span.get(key)
    return getattr(span, key, None)


def breakdown_from_spans(
        spans: Sequence[Union[Span, dict]]) -> list[CallPhases]:
    """Per-call phase decompositions from a span collection.

    Accepts :class:`~repro.obs.Span` objects (``tracer.spans``) or
    exported dicts (``tracer.export()`` / a saved JSON-lines file).
    Calls without a finished root span are skipped; span order does not
    matter.  Results are sorted by trace id (= call start order).
    """
    by_trace: dict[int, dict[str, float]] = {}
    meta: dict[int, dict] = {}
    for span in spans:
        trace_id = _field(span, "trace_id")
        name = _field(span, "name")
        duration = _field(span, "duration")
        if duration is None:
            duration = _field(span, "end") - _field(span, "start")
        phases = by_trace.setdefault(trace_id, {})
        if name == SPAN_ROOT:
            phases["total"] = duration
            attrs = _field(span, "attrs") or {}
            meta[trace_id] = attrs
        elif name == SPAN_QUEUE:
            phases["queue"] = phases.get("queue", 0.0) + duration
        elif name == SPAN_COMPUTE:
            phases["compute"] = phases.get("compute", 0.0) + duration
    calls = []
    for trace_id in sorted(by_trace):
        phases = by_trace[trace_id]
        if "total" not in phases:
            continue  # root never ended (failed or in-flight call)
        attrs = meta.get(trace_id, {})
        calls.append(CallPhases(
            trace_id=trace_id,
            function=str(attrs.get("function", "?")),
            source=str(attrs.get("source", "?")),
            total=phases["total"],
            queue=phases.get("queue", 0.0),
            compute=phases.get("compute", 0.0),
        ))
    return calls


def summarize(calls: Sequence[CallPhases],
              label: Optional[str] = None) -> PhaseBreakdown:
    """Mean-per-call aggregate of a list of :class:`CallPhases`."""
    if label is None:
        label = calls[0].source if calls else "empty"
    count = len(calls)
    if count == 0:
        return PhaseBreakdown(label=label, calls=0, total=0.0,
                              transfer=0.0, queue=0.0, compute=0.0)
    return PhaseBreakdown(
        label=label,
        calls=count,
        total=sum(c.total for c in calls) / count,
        transfer=sum(c.transfer for c in calls) / count,
        queue=sum(c.queue for c in calls) / count,
        compute=sum(c.compute for c in calls) / count,
    )


def format_breakdown(rows: Sequence[PhaseBreakdown]) -> str:
    """Paper-style stacked table: one line per breakdown row.

    Columns are mean seconds per call plus the transfer/compute shares
    of total time -- the same decomposition the paper's multi-client
    tables report as throughput vs. server-time columns.
    """
    header = (f"{'source':<28} {'calls':>5} {'total':>9} {'transfer':>9} "
              f"{'queue':>9} {'compute':>9} {'xfer%':>6} {'comp%':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.label:<28} {row.calls:>5} {row.total:>9.4f} "
            f"{row.transfer:>9.4f} {row.queue:>9.4f} {row.compute:>9.4f} "
            f"{row.share('transfer') * 100:>5.1f}% "
            f"{row.share('compute') * 100:>5.1f}%"
        )
    return "\n".join(lines)


def _breakdown_server_main(conn, num_pes: int) -> None:
    """Child-process entry point for the cross-process breakdown arms.

    Runs a standard-library :class:`~repro.server.NinfServer`, reports
    its bound address over the pipe, and serves until the parent closes
    its end (or sends anything).  Module-level so the ``spawn`` start
    method can pickle it.
    """
    from repro.cli import standard_registry
    from repro.server import NinfServer

    with NinfServer(standard_registry(), num_pes=num_pes) as server:
        conn.send(server.address)
        try:
            conn.recv()  # blocks until the parent signals shutdown
        except EOFError:
            pass


def live_loopback_breakdown(calls: int = 4, n: int = 64,
                            tracer: Optional[Tracer] = None,
                            shm: Optional[bool] = None,
                            cross_process: bool = False
                            ) -> tuple[PhaseBreakdown, list[CallPhases]]:
    """Run real ``Ninf_call``\\ s over loopback and break them down.

    Starts a :class:`~repro.server.NinfServer` with the standard
    library, makes ``calls`` ``dmmul(n)`` calls through a
    wall-clock-traced :class:`~repro.client.NinfClient`, and returns
    the aggregate plus per-call decompositions.  Pass ``tracer`` to
    also keep the raw spans (e.g. for ``--trace`` capture).

    ``shm`` selects the transport-ablation arm (PROTOCOL.md
    §"Shared-memory handshake"): ``None`` (default) keeps the stock
    asyncio client over loopback TCP; ``True``/``False`` switch to the
    threaded client with the shared-memory upgrade forced on or off,
    which is how ``ninf-experiment breakdown`` shows the transfer-phase
    drop the shm rings buy on the same host.

    ``cross_process`` runs the server in a spawned child process
    instead of background threads.  This is the configuration the shm
    transport exists for: with client and server in one process the
    two sides share the GIL, so ring copies serialize against the very
    peer being fed and the comparison measures interpreter scheduling,
    not transport.  (Queue/compute spans still work -- the server
    reports its timestamps in the reply and the client records the
    spans locally.)
    """
    import multiprocessing

    import numpy as np

    from repro.cli import standard_registry
    from repro.client import NinfClient
    from repro.server import NinfServer

    tracer = tracer if tracer is not None else Tracer()
    rng = np.random.default_rng(1997)
    a = rng.random((n, n))
    b = rng.random((n, n))
    c = np.zeros((n, n))
    client_kwargs = ({} if shm is None
                     else {"transport": "threads", "shm": shm})

    def run_calls(host: str, port: int) -> None:
        with NinfClient(host, port, tracer=tracer,
                        **client_kwargs) as client:
            for _ in range(calls):
                client.call("dmmul", n, a, b, c)

    if cross_process:
        # spawn, never fork: the parent may be running asyncio servers
        # on background threads (and a forked child would inherit them).
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(target=_breakdown_server_main,
                               args=(child_conn, 2), daemon=True)
        proc.start()
        child_conn.close()
        try:
            host, port = parent_conn.recv()
            run_calls(host, port)
        finally:
            parent_conn.close()  # EOF tells the child to shut down
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck child
                proc.terminate()
                proc.join()
    else:
        with NinfServer(standard_registry(), num_pes=2) as server:
            host, port = server.address
            run_calls(host, port)
    per_call = [p for p in breakdown_from_spans(tracer.spans)
                if p.source == "live"]
    suffix = "" if shm is None else (" shm" if shm else " tcp")
    where = " xproc" if cross_process else ""
    label = f"live dmmul(n={n}){where}{suffix}"
    return summarize(per_call, label=label), per_call


def sim_breakdown(n: int = 600, c: int = 4, server_name: str = "j90",
                  mode: str = "task", horizon: float = 60.0,
                  tracer: Optional[Tracer] = None
                  ) -> tuple[PhaseBreakdown, list[CallPhases]]:
    """Break down a simulated LAN multi-client cell the same way.

    Runs the Table 3 scenario (``c`` clients calling Linpack ``n`` on a
    ``server_name`` server over the LAN catalog) with a sim-clock
    tracer attached and feeds the resulting spans through the same
    :func:`breakdown_from_spans` pipeline as the live path -- the
    schema-parity this module exists to demonstrate.  The tracer's
    ``clock`` callable is never consulted here: simulated spans carry
    explicit simulated timestamps.
    """
    from repro.experiments.common import run_multiclient_cell
    from repro.model.machines import machine
    from repro.model.network import lan_catalog
    from repro.simninf.calls import linpack_spec

    tracer = tracer if tracer is not None else Tracer(clock_name="sim")
    server = machine(server_name)
    client = machine("alpha")
    catalog = lan_catalog(server)

    def route_factory(net, i):
        return catalog.route_for(client, i)

    run_multiclient_cell(server, route_factory, linpack_spec(server, n),
                         c, mode=mode, n=n, horizon=horizon, tracer=tracer)
    per_call = [p for p in breakdown_from_spans(tracer.spans)
                if p.source == "sim"]
    label = f"sim linpack(n={n}) c={c}"
    return summarize(per_call, label=label), per_call
