"""Multi-client LAN experiments: Tables 3, 4, 5 and Fig 7.

The scenario of §4.1: Alpha WS cluster nodes as clients, J90 (Tables
3/4) or SuperSPARC SMP (Table 5) as the server, each client issuing a
Linpack ``Ninf_call`` every ``s=3`` seconds with probability ``p=1/2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import MulticlientResult, run_multiclient_cell
from repro.model.machines import machine
from repro.model.network import lan_catalog
from repro.simninf.calls import linpack_spec

__all__ = [
    "LanTable",
    "connection_reuse_speedup",
    "fig7_surface",
    "table3_1pe",
    "table4_4pe",
    "table5_smp",
]

PAPER_SIZES = (600, 1000, 1400)
PAPER_CLIENTS = (1, 2, 4, 8, 16)
LAN_HORIZON = 240.0


@dataclass
class LanTable:
    """One of the paper's multi-client tables: rows indexed by (n, c)."""

    name: str
    cells: dict[tuple[int, int], MulticlientResult] = field(default_factory=dict)

    def row(self, n: int, c: int):
        """The aggregated TableRow of one (n, c) cell."""
        return self.cells[(n, c)].row

    def mean_performance(self, n: int, c: int) -> float:
        """Mean per-call performance (flop/s or ops/s) of a cell."""
        return self.row(n, c).performance.mean

    def format(self) -> str:
        """Paper-style text rendering of every cell."""
        lines = [f"== {self.name} =="]
        for (n, c) in sorted(self.cells):
            lines.append(self.cells[(n, c)].row.format())
        return "\n".join(lines)


def _run_lan_table(name: str, server_name: str, mode: str,
                   sizes: Sequence[int], clients: Sequence[int],
                   horizon: float, client_name: str = "alpha",
                   switch_overhead: float = 0.0,
                   seed: int = 1997, pooled: bool = False) -> LanTable:
    server = machine(server_name)
    client = machine(client_name)
    table = LanTable(name=name)
    for n in sizes:
        spec = linpack_spec(server, n)
        for c in clients:
            catalog = lan_catalog(server)  # fresh links per cell

            def route_factory(net, i, _catalog=catalog, _client=client):
                return _catalog.route_for(_client, i)

            table.cells[(n, c)] = run_multiclient_cell(
                server, route_factory, spec, c, mode=mode, n=n,
                horizon=horizon, seed=seed,
                switch_overhead=switch_overhead, pooled=pooled,
            )
    return table


def connection_reuse_speedup(server_name: str = "j90", mode: str = "task",
                             n: int = 600, c: int = 8,
                             horizon: float = LAN_HORIZON,
                             seed: int = 1997) -> dict[str, float]:
    """Pooled vs per-call-connection LAN cell: the transport ablation.

    Runs one (n, c) Linpack cell twice -- once with the paper's
    connection-per-call clients, once with keep-alive pooled clients --
    and reports mean elapsed time per call for both plus the speedup
    factor.  This is the simulator-side counterpart of
    ``NinfClient(pool=...)``.
    """
    server = machine(server_name)
    client = machine("alpha")
    spec = linpack_spec(server, n)
    results = {}
    for label, pooled in (("per_call", False), ("pooled", True)):
        catalog = lan_catalog(server)

        def route_factory(net, i, _catalog=catalog, _client=client):
            return _catalog.route_for(_client, i)

        cell = run_multiclient_cell(server, route_factory, spec, c,
                                    mode=mode, n=n, horizon=horizon,
                                    seed=seed, pooled=pooled)
        if not cell.records:
            raise RuntimeError("cell completed no calls; raise the horizon")
        results[label] = (sum(r.elapsed for r in cell.records)
                          / len(cell.records))
    results["speedup"] = (results["per_call"] / results["pooled"]
                          if results["pooled"] > 0 else float("inf"))
    return results


def table3_1pe(sizes: Sequence[int] = PAPER_SIZES,
               clients: Sequence[int] = PAPER_CLIENTS,
               horizon: float = LAN_HORIZON, seed: int = 1997) -> LanTable:
    """Table 3: task-parallel (1-PE) multi-client LAN Linpack on the J90."""
    return _run_lan_table("Table 3: 1-PE multi-client LAN Linpack (J90)",
                          "j90", "task", sizes, clients, horizon, seed=seed)


def table4_4pe(sizes: Sequence[int] = PAPER_SIZES,
               clients: Sequence[int] = PAPER_CLIENTS,
               horizon: float = LAN_HORIZON, seed: int = 1997) -> LanTable:
    """Table 4: data-parallel (4-PE) multi-client LAN Linpack on the J90."""
    return _run_lan_table("Table 4: 4-PE multi-client LAN Linpack (J90)",
                          "j90", "data", sizes, clients, horizon, seed=seed)


def table5_smp(sizes: Sequence[int] = (600,),
               clients: Sequence[int] = (4, 8, 16),
               horizon: float = LAN_HORIZON,
               threads: int = 1, seed: int = 1997) -> LanTable:
    """Table 5: multi-client LAN Linpack on the 16-node SuperSPARC SMP.

    ``threads=1`` is the paper's measured 1-PE table.  Larger values
    model the "highly-multithreaded" library variant whose
    thread-switching overhead makes it *slower* under multi-client load
    (the §4.2.1 observation) -- each call then occupies ``threads`` PEs
    worth of parallelism with a per-switch penalty.
    """
    switch_overhead = 0.0 if threads <= 1 else 0.35 * threads
    mode = "task" if threads <= 1 else "data"
    return _run_lan_table(
        f"Table 5: SMP multi-client LAN Linpack (threads={threads})",
        "sparc-smp", mode, sizes, clients, horizon,
        switch_overhead=switch_overhead, seed=seed,
    )


def fig7_surface(table_1pe: Optional[LanTable] = None,
                 table_4pe: Optional[LanTable] = None,
                 sizes: Sequence[int] = PAPER_SIZES,
                 clients: Sequence[int] = PAPER_CLIENTS,
                 horizon: float = LAN_HORIZON
                 ) -> dict[str, dict[tuple[int, int], float]]:
    """Fig 7: the (n, c) -> mean Mflops surfaces for both versions."""
    if table_1pe is None:
        table_1pe = table3_1pe(sizes, clients, horizon)
    if table_4pe is None:
        table_4pe = table4_4pe(sizes, clients, horizon)
    return {
        "1pe": {key: cell.row.performance.mean / 1e6
                for key, cell in table_1pe.cells.items()},
        "4pe": {key: cell.row.performance.mean / 1e6
                for key, cell in table_4pe.cells.items()},
    }
