"""Overload & failover ablations: the DESIGN.md §3.5 resilience story.

Two questions the paper's steady-state tables never ask:

1. **What happens past saturation?**  The 1997 server fork-on-arrival
   accepts every call, so offered load beyond PE capacity turns into an
   unbounded processor-share pile-up -- every client's latency grows
   without limit and nobody meets a deadline.  Admission control
   (``max_queued``) sheds the excess at the door with a retry-after
   hint instead; :func:`overload_ablation` sweeps offered load and
   compares goodput (on-time completions per second) and p95 elapsed
   for the two disciplines.

2. **What happens when servers die?**  :func:`failover_ablation` kills
   a fraction of an n-server fleet mid-run and compares availability
   (call success rate) for bare clients bound to one server against
   clients that fail over to backup servers -- the simulated analogue
   of the live :class:`~repro.metaserver.BrokeredClient` re-picking
   through the metaserver with a circuit breaker.

Both sweeps are fully seeded: the same arguments reproduce the same
tables exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import (
    DEFAULT_HORIZON,
    ISSUE_PROBABILITY,
    THINK_INTERVAL_S,
    run_multiclient_cell,
)
from repro.model.machines import machine
from repro.model.network import lan_catalog
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.simninf.calls import SimCallRecord, linpack_spec
from repro.simninf.client import WorkloadClient
from repro.simninf.server import SimNinfServer

__all__ = [
    "FailoverCell",
    "OverloadCell",
    "failover_ablation",
    "format_failover",
    "format_overload",
    "overload_ablation",
]


@dataclass(frozen=True)
class OverloadCell:
    """One (offered load, queue discipline) point of the overload sweep."""

    load_factor: float
    max_queued: Optional[int]
    clients: int
    calls_issued: int
    calls_completed: int
    calls_shed: int
    calls_failed: int
    late_calls: int
    goodput: float  # on-time completions per second
    success_rate: float
    mean_elapsed: float
    p95_elapsed: float

    @property
    def bounded(self) -> bool:
        return self.max_queued is not None


def _percentiles(records: Sequence[SimCallRecord]) -> tuple[float, float]:
    elapsed = [r.elapsed for r in records]
    if not elapsed:
        return 0.0, 0.0
    return float(np.mean(elapsed)), float(np.percentile(elapsed, 95))


def overload_ablation(
    load_factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    max_queued: int = 2,
    retry_attempts: int = 3,
    server_name: str = "j90",
    n: int = 600,
    horizon: float = DEFAULT_HORIZON,
    seed: int = 1997,
    deadline_multiple: float = 6.0,
) -> list[OverloadCell]:
    """Sweep offered load with unbounded vs bounded admission.

    ``load_factor`` is offered load relative to PE capacity: the client
    count is sized so the fleet's aggregate issue rate (``p/s`` per
    client) is ``load_factor x num_pes / T_service``.  Each load point
    runs twice: ``max_queued=None`` (the 1997 accept-everything server)
    and the bounded queue, whose shed clients honour the retry-after
    hint up to ``retry_attempts`` times.  A call is "on time" when its
    elapsed stays under ``deadline_multiple`` times the one-PE service
    time; goodput counts only those.
    """
    server = machine(server_name)
    client = machine("alpha")
    spec = linpack_spec(server, n)
    service = spec.comp_seconds_1pe
    per_client_rate = ISSUE_PROBABILITY / THINK_INTERVAL_S
    capacity = server.num_pes / service  # calls/s the PE pool absorbs
    deadline = deadline_multiple * service
    cells: list[OverloadCell] = []
    for load in load_factors:
        c = max(1, round(load * capacity / per_client_rate))
        for bound in (None, max_queued):
            catalog = lan_catalog(server)  # fresh links per cell

            def route_factory(net, i, _catalog=catalog, _client=client):
                return _catalog.route_for(_client, i)

            result = run_multiclient_cell(
                server, route_factory, spec, c, mode="task", n=n,
                horizon=horizon, seed=seed, max_queued=bound,
                retry_attempts=retry_attempts, call_deadline=deadline,
            )
            mean_elapsed, p95 = _percentiles(result.records)
            on_time = len(result.records) - result.late_calls
            cells.append(OverloadCell(
                load_factor=load,
                max_queued=bound,
                clients=c,
                calls_issued=result.calls_issued,
                calls_completed=len(result.records),
                calls_shed=result.shed_seen,
                calls_failed=result.failed_calls,
                late_calls=result.late_calls,
                goodput=on_time / horizon,
                success_rate=result.success_rate,
                mean_elapsed=mean_elapsed,
                p95_elapsed=p95,
            ))
    return cells


def format_overload(cells: Sequence[OverloadCell]) -> str:
    """Markdown table of the sweep (the EXPERIMENTS.md rendering)."""
    lines = [
        "| load | queue | clients | issued | completed | shed | late | "
        "goodput (/s) | p95 elapsed (s) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for cell in cells:
        queue = (f"bounded({cell.max_queued})" if cell.bounded
                 else "unbounded")
        lines.append(
            f"| {cell.load_factor:.1f}x | {queue} | {cell.clients} "
            f"| {cell.calls_issued} | {cell.calls_completed} "
            f"| {cell.calls_shed} | {cell.late_calls} "
            f"| {cell.goodput:.2f} | {cell.p95_elapsed:.2f} |"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class FailoverCell:
    """One (kill fraction, failover on/off) point of the failover sweep."""

    kill_fraction: float
    failover: bool
    servers: int
    servers_killed: int
    calls_issued: int
    calls_completed: int
    calls_failed: int
    failovers: int
    availability: float
    mean_elapsed: float
    p95_elapsed: float


def failover_ablation(
    kill_fractions: Sequence[float] = (0.0, 0.25, 0.5),
    n_servers: int = 4,
    c: int = 8,
    server_name: str = "j90",
    n: int = 600,
    horizon: float = 120.0,
    kill_at: Optional[float] = None,
    seed: int = 1997,
    retry_attempts: int = 3,
) -> list[FailoverCell]:
    """Kill a fraction of the fleet mid-run, with and without failover.

    Clients are spread round-robin over ``n_servers``; at ``kill_at``
    (default a third into the run) the first ``kill_fraction x
    n_servers`` servers go down.  Bare clients stay bound to their
    (possibly dead) primary; failover clients walk the remaining fleet
    in round-robin order, the simulated analogue of the live
    metaserver re-pick + circuit breaker.
    """
    server_spec = machine(server_name)
    client_spec = machine("alpha")
    spec = linpack_spec(server_spec, n)
    when = horizon / 3.0 if kill_at is None else kill_at
    cells: list[FailoverCell] = []
    for fraction in kill_fractions:
        n_kill = round(fraction * n_servers)
        for failover in (False, True):
            sim = Simulator()
            network = Network(sim)
            fleet: list[tuple[SimNinfServer, object]] = []
            for _ in range(n_servers):
                catalog = lan_catalog(server_spec)  # per-server NIC
                fleet.append((
                    SimNinfServer(sim, network, server_spec, mode="task"),
                    catalog,
                ))
            clients = []
            for i in range(c):
                # Client i's candidate order: its primary first, then
                # the rest of the fleet round-robin.
                order = []
                for j in range(n_servers):
                    srv, catalog = fleet[(i + j) % n_servers]
                    order.append((srv, catalog.route_for(client_spec, i)))
                primary_server, primary_route = order[0]
                backups = order[1:] if failover else []
                clients.append(WorkloadClient(
                    sim, i, primary_server, primary_route, spec,
                    horizon=horizon, seed=seed, backups=backups,
                    retry_attempts=retry_attempts,
                ))

            if n_kill:
                def reaper(_sim=sim, _fleet=fleet, _kill=n_kill,
                           _when=when):
                    yield _sim.timeout(_when)
                    for srv, _catalog in _fleet[:_kill]:
                        srv.kill()

                sim.process(reaper(), name="reaper")
            sim.run(until=horizon)
            while any(cl.process.alive for cl in clients):
                if not sim.step():  # pragma: no cover - drain guard
                    break
            records: list[SimCallRecord] = []
            for cl in clients:
                records.extend(cl.records)
            failed = sum(cl.failed_calls for cl in clients)
            issued = len(records) + failed
            mean_elapsed, p95 = _percentiles(records)
            cells.append(FailoverCell(
                kill_fraction=fraction,
                failover=failover,
                servers=n_servers,
                servers_killed=n_kill,
                calls_issued=issued,
                calls_completed=len(records),
                calls_failed=failed,
                failovers=sum(cl.failovers for cl in clients),
                availability=(1.0 if issued == 0
                              else len(records) / issued),
                mean_elapsed=mean_elapsed,
                p95_elapsed=p95,
            ))
    return cells


def format_failover(cells: Sequence[FailoverCell]) -> str:
    """Markdown table of the sweep (the EXPERIMENTS.md rendering)."""
    lines = [
        "| killed | failover | issued | completed | failovers | "
        "availability | p95 elapsed (s) |",
        "|---|---|---|---|---|---|---|",
    ]
    for cell in cells:
        lines.append(
            f"| {cell.servers_killed}/{cell.servers} "
            f"| {'on' if cell.failover else 'off'} | {cell.calls_issued} "
            f"| {cell.calls_completed} | {cell.failovers} "
            f"| {100 * cell.availability:.1f}% | {cell.p95_elapsed:.2f} |"
        )
    return "\n".join(lines)
