"""Digitized reference values from the paper, for paper-vs-measured
comparison in benchmarks and EXPERIMENTS.md.

Sources: Tables 2-8 verbatim; Figs 3/4/5/10/11 as the ranges the text
quotes (crossover windows, saturation levels, deterioration bands).
All performance numbers in Mflops (Linpack) or Mops (EP); throughput in
MB/s; times in seconds.
"""

from __future__ import annotations

__all__ = [
    "FIG3_CROSSOVERS",
    "FIG4_CROSSOVERS",
    "FIG5_SATURATION",
    "FIG10_DETERIORATION",
    "TABLE2_FTP_MB",
    "TABLE3_1PE_MEAN",
    "TABLE4_4PE_MEAN",
    "TABLE5_SMP_MEAN",
    "TABLE6_WAN_1PE_MEAN",
    "TABLE7_WAN_4PE_MEAN",
    "TABLE8_EP_MEAN",
]

# Fig 3: Ninf_call overtakes client Local at approximately these n.
FIG3_CROSSOVERS = {
    "sparc-clients": (200, 400),       # "at approximately n = 200~400"
}
# Fig 4: Alpha client vs J90.
FIG4_CROSSOVERS = {
    "alpha-optimized": (800, 1000),    # "approximately n = 800~1000"
    "alpha-standard": (400, 600),      # "approximately n = 400~600"
}

# Fig 5: Ninf_call throughput saturation levels (MB/s).
FIG5_SATURATION = {
    "to-j90": 2.0,          # "three lines saturating at approximately 2MB/s"
    "sparc-to-alpha": 3.5,  # "saturating at approximately 3.5 MB/s"
    "same-arch": 6.0,       # "saturating at around 6 MB/s"
}

# Table 2 (MB/s).
TABLE2_FTP_MB = {
    ("supersparc", "ultrasparc"): 4.0,
    ("supersparc", "alpha"): 4.0,
    ("supersparc", "j90"): 2.8,
    ("ultrasparc", "alpha"): 7.4,
    ("ultrasparc", "j90"): 2.7,
    ("alpha", "j90"): 2.9,
}

# Tables 3/4: mean Ninf_call performance [Mflops], (n, c) -> mean.
TABLE3_1PE_MEAN = {
    (600, 1): 71.16, (600, 2): 69.63, (600, 4): 67.05, (600, 8): 49.02,
    (600, 16): 21.27,
    (1000, 1): 93.40, (1000, 2): 89.90, (1000, 4): 81.39, (1000, 8): 46.48,
    (1000, 16): 21.14,
    (1400, 1): 113.65, (1400, 2): 110.48, (1400, 4): 93.35, (1400, 8): 50.11,
    (1400, 16): 23.93,
}
TABLE3_CPU = {
    (600, 1): 12.63, (600, 16): 98.66,
    (1400, 1): 24.27, (1400, 8): 99.97, (1400, 16): 100.0,
}
TABLE4_4PE_MEAN = {
    (600, 1): 91.46, (600, 2): 83.17, (600, 4): 75.83, (600, 8): 51.51,
    (600, 16): 18.69,
    (1000, 1): 141.43, (1000, 2): 127.63, (1000, 4): 92.98, (1000, 8): 45.85,
    (1000, 16): 20.33,
    (1400, 1): 193.03, (1400, 2): 157.98, (1400, 4): 96.26, (1400, 8): 48.27,
    (1400, 16): 23.25,
}

# Table 5 (SMP, n=600): c -> mean Mflops / mean MB/s / CPU% / load.
TABLE5_SMP_MEAN = {
    4: (3.80, 0.43, 49.92, 6.08),
    8: (3.51, 0.37, 62.91, 8.84),
    16: (2.81, 0.34, 89.89, 15.37),
}

# Tables 6/7 (single-site WAN): (n, c) -> (mean Mflops, mean MB/s).
TABLE6_WAN_1PE_MEAN = {
    (600, 1): (5.90, 0.128), (600, 2): (4.69, 0.096), (600, 4): (2.41, 0.050),
    (600, 8): (1.14, 0.023), (600, 16): (0.54, 0.011),
    (1000, 1): (9.28, 0.123), (1000, 4): (3.66, 0.045),
    (1000, 16): (0.90, 0.011),
    (1400, 1): (13.89, 0.130), (1400, 4): (5.38, 0.048),
    (1400, 8): (2.50, 0.022), (1400, 16): (1.25, 0.011),
}
TABLE7_WAN_4PE_MEAN = {
    (600, 1): (7.68, 0.161), (600, 4): (2.46, 0.051), (600, 16): (0.54, 0.011),
    (1000, 1): (10.50, 0.131), (1000, 4): (3.97, 0.049),
    (1000, 16): (0.88, 0.011),
    (1400, 1): (16.42, 0.147), (1400, 4): (5.50, 0.048),
    (1400, 16): (1.25, 0.011),
}

# Table 8: c -> (LAN mean Mops, WAN mean Mops, LAN CPU%, WAN CPU%).
TABLE8_EP_MEAN = {
    1: (0.167, 0.168, 30.51, 25.02),
    2: (0.168, 0.168, 53.86, 49.16),
    4: (0.166, 0.166, 98.18, 98.14),
    8: (0.084, 0.084, 100.0, 100.0),
    16: (0.042, 0.042, 100.0, 99.94),
}

# Fig 10: Ocha-U bandwidth deterioration (fraction) multi-site vs alone.
FIG10_DETERIORATION = {
    1: (0.09, 0.18),   # c=1 per site: "only by 9% ~ 18%"
    4: (0.18, 0.44),   # c=4 per site: "18% ~ 44%"
}
