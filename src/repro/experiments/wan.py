"""WAN experiments: Tables 6/7 (single-site), Fig 8, Fig 10 (multi-site).

Single-site (§4.2.2): 8-16 SuperSPARC clients at Ocha-U, ~60 km from the
ETL J90, sharing one 0.17 MB/s uplink.  Multi-site (§4.2.3): clients at
four university sites on different backbones (Fig 9), all calling the
ETL J90 running the 4-PE Linpack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.common import MulticlientResult, run_multiclient_cell
from repro.experiments.lan_multiclient import LanTable
from repro.model.machines import machine
from repro.model.network import (
    WAN_SITES,
    multisite_wan_catalog,
    singlesite_wan_catalog,
)
from repro.simninf.calls import linpack_spec

__all__ = [
    "MultisiteCell",
    "fig8_surface",
    "fig10_multisite",
    "table6_1pe",
    "table7_4pe",
]

PAPER_SIZES = (600, 1000, 1400)
PAPER_CLIENTS = (1, 2, 4, 8, 16)
WAN_HORIZON = 2400.0


def _run_wan_table(name: str, mode: str, sizes: Sequence[int],
                   clients: Sequence[int], horizon: float,
                   seed: int = 1997) -> LanTable:
    server = machine("j90")
    table = LanTable(name=name)
    for n in sizes:
        spec = linpack_spec(server, n)
        for c in clients:
            catalog = singlesite_wan_catalog(server)

            def route_factory(net, i, _catalog=catalog):
                return _catalog.route_for_site("ochau", i)

            table.cells[(n, c)] = run_multiclient_cell(
                server, route_factory, spec, c, mode=mode, n=n,
                horizon=horizon, seed=seed,
                site_of=lambda i: "ochau",
            )
    return table


def table6_1pe(sizes: Sequence[int] = PAPER_SIZES,
               clients: Sequence[int] = PAPER_CLIENTS,
               horizon: float = WAN_HORIZON, seed: int = 1997) -> LanTable:
    """Table 6: single-site WAN, task-parallel (1-PE) Linpack."""
    return _run_wan_table("Table 6: single-site WAN 1-PE Linpack",
                          "task", sizes, clients, horizon, seed)


def table7_4pe(sizes: Sequence[int] = PAPER_SIZES,
               clients: Sequence[int] = PAPER_CLIENTS,
               horizon: float = WAN_HORIZON, seed: int = 1997) -> LanTable:
    """Table 7: single-site WAN, data-parallel (4-PE) Linpack."""
    return _run_wan_table("Table 7: single-site WAN 4-PE Linpack",
                          "data", sizes, clients, horizon, seed)


def fig8_surface(sizes: Sequence[int] = PAPER_SIZES,
                 clients: Sequence[int] = PAPER_CLIENTS,
                 horizon: float = WAN_HORIZON
                 ) -> dict[str, dict[tuple[int, int], float]]:
    """Fig 8: WAN mean-performance surfaces for 1-PE and 4-PE."""
    return {
        "1pe": {key: cell.row.performance.mean / 1e6
                for key, cell in table6_1pe(sizes, clients, horizon).cells.items()},
        "4pe": {key: cell.row.performance.mean / 1e6
                for key, cell in table7_4pe(sizes, clients, horizon).cells.items()},
    }


@dataclass
class MultisiteCell:
    """Fig 10 measurement for one (n, clients-per-site) configuration."""

    n: int
    clients_per_site: int
    result: MulticlientResult
    # Per-site mean throughput (bytes/s) and performance (flop/s).
    site_throughput: dict[str, float] = field(default_factory=dict)
    site_performance: dict[str, float] = field(default_factory=dict)
    # The single-site baseline for Ocha-U with the same total c there.
    ochau_single_site: MulticlientResult | None = None

    @property
    def ochau_deterioration(self) -> float:
        """Fractional drop of Ocha-U per-client throughput vs running
        the same number of Ocha-U clients alone (the paper's 9-18% /
        18-44% figures)."""
        if self.ochau_single_site is None:
            raise RuntimeError("baseline not attached")
        multi = self.site_throughput["ochau"]
        single = self.ochau_single_site.row.throughput.mean
        if single <= 0:
            return 0.0
        return max(0.0, 1.0 - multi / single)


def fig10_multisite(sizes: Sequence[int] = PAPER_SIZES,
                    clients_per_site: Sequence[int] = (1, 4),
                    horizon: float = WAN_HORIZON,
                    seed: int = 1997) -> list[MultisiteCell]:
    """Fig 10: clients at Ocha-U, U-Tokyo, TITech, NITech calling the
    ETL J90 (4-PE Linpack)."""
    server = machine("j90")
    sites = list(WAN_SITES)
    cells: list[MultisiteCell] = []
    for n in sizes:
        spec = linpack_spec(server, n)
        for per_site in clients_per_site:
            total = per_site * len(sites)
            catalog = multisite_wan_catalog(server)
            assignment = [sites[i % len(sites)] for i in range(total)]

            def route_factory(net, i, _catalog=catalog, _assign=assignment):
                return _catalog.route_for_site(_assign[i], i)

            result = run_multiclient_cell(
                server, route_factory, spec, total, mode="data", n=n,
                horizon=horizon, seed=seed,
                site_of=lambda i, _assign=assignment: _assign[i],
            )
            cell = MultisiteCell(n=n, clients_per_site=per_site,
                                 result=result)
            for site in sites:
                site_records = [r for r in result.records if r.site == site]
                if site_records:
                    cell.site_throughput[site] = (
                        sum(r.throughput for r in site_records)
                        / len(site_records)
                    )
                    cell.site_performance[site] = (
                        sum(r.performance for r in site_records)
                        / len(site_records)
                    )
            # Baseline: the same per-site client count at Ocha-U alone.
            baseline_catalog = singlesite_wan_catalog(server)
            cell.ochau_single_site = run_multiclient_cell(
                server,
                lambda net, i, _c=baseline_catalog: _c.route_for_site("ochau", i),
                spec, per_site, mode="data", n=n, horizon=horizon,
                seed=seed, site_of=lambda i: "ochau",
            )
            cells.append(cell)
    return cells
