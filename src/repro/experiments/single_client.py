"""Single-client experiments: Figs 3, 4, 5 and Table 2.

Fig 3: SuperSPARC/UltraSPARC clients, Linpack vs Local over n.
Fig 4: Alpha client (optimized + standard local library) vs J90.
Fig 5: Ninf_call communication throughput vs transfer size.
Table 2: raw (FTP) client-server throughput baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.machines import MachineSpec, machine
from repro.model.network import (
    FTP_THROUGHPUT,
    ftp_throughput,
    lan_catalog,
    ninf_effective_bandwidth,
)
from repro.model.perf import LinpackModel
from repro.simninf.calls import CallSpec, linpack_spec
from repro.experiments.common import run_one_call

__all__ = [
    "CurvePoint",
    "SingleClientCurve",
    "fig3_sparc_clients",
    "fig4_alpha_client",
    "fig5_throughput",
    "table2_ftp",
]

DEFAULT_SIZES = tuple(range(100, 1601, 100))


@dataclass(frozen=True)
class CurvePoint:
    n: int
    mflops: float


@dataclass
class SingleClientCurve:
    """One line of Fig 3/4: a (client, server) pair or a Local curve."""

    label: str
    points: list[CurvePoint] = field(default_factory=list)

    def at(self, n: int) -> float:
        """Mflops at problem size ``n`` (KeyError if not sampled)."""
        for point in self.points:
            if point.n == n:
                return point.mflops
        raise KeyError(f"no point at n={n} on {self.label}")

    def crossover_against(self, other: "SingleClientCurve") -> Optional[int]:
        """Smallest n where this curve exceeds ``other`` (None if never)."""
        for point in self.points:
            if point.mflops > other.at(point.n):
                return point.n
        return None


def local_curve(client: MachineSpec, sizes=DEFAULT_SIZES,
                standard: bool = False) -> SingleClientCurve:
    """Local (no Ninf) Linpack performance of a client machine."""
    model = LinpackModel(client, pes=client.num_pes, standard=standard)
    suffix = " (standard)" if standard else ""
    curve = SingleClientCurve(label=f"{client.name} local{suffix}")
    for n in sizes:
        curve.points.append(CurvePoint(n, model.local_performance(n) / 1e6))
    return curve


def ninf_curve(client: MachineSpec, server: MachineSpec,
               sizes=DEFAULT_SIZES) -> SingleClientCurve:
    """Simulated Ninf_call performance from ``client`` to ``server``."""
    catalog = lan_catalog(server)
    curve = SingleClientCurve(label=f"{client.name}->{server.name} Ninf_call")
    for n in sizes:
        spec = linpack_spec(server, n)
        record = run_one_call(
            server,
            lambda net, i: catalog.route_for(client, i),
            spec,
            mode="data" if server.num_pes > 1 else "task",
        )
        curve.points.append(CurvePoint(n, record.performance / 1e6))
    return curve


def fig3_sparc_clients(sizes=DEFAULT_SIZES) -> dict[str, SingleClientCurve]:
    """Fig 3: SPARC clients -- Local vs Ninf_call to Ultra/Alpha/J90."""
    supersparc = machine("supersparc")
    ultrasparc = machine("ultrasparc")
    curves: dict[str, SingleClientCurve] = {}
    curves["supersparc-local"] = local_curve(supersparc, sizes)
    curves["ultrasparc-local"] = local_curve(ultrasparc, sizes)
    for client in (supersparc, ultrasparc):
        for server_name in ("ultrasparc", "alpha", "j90"):
            if client.name == server_name:
                continue
            try:
                ftp_throughput(client.name, server_name)
            except KeyError:
                continue
            key = f"{client.name}->{server_name}"
            curves[key] = ninf_curve(client, machine(server_name), sizes)
    return curves


def fig4_alpha_client(sizes=DEFAULT_SIZES) -> dict[str, SingleClientCurve]:
    """Fig 4: Alpha client (optimized + standard Local) vs J90 Ninf_call."""
    alpha = machine("alpha")
    return {
        "alpha-local-optimized": local_curve(alpha, sizes),
        "alpha-local-standard": local_curve(alpha, sizes, standard=True),
        "alpha->j90": ninf_curve(alpha, machine("j90"), sizes),
    }


@dataclass(frozen=True)
class ThroughputPoint:
    nbytes: float
    throughput: float  # bytes/s


def fig5_throughput(pairs: Optional[list[tuple[str, str]]] = None,
                    sizes: Optional[list[float]] = None
                    ) -> dict[str, list[ThroughputPoint]]:
    """Fig 5: Ninf_call throughput vs transferred bytes per pair.

    Measured exactly as the paper does: total bytes over total transfer
    time, marshalling included, on an otherwise idle network -- so small
    transfers pay the setup overhead and large ones saturate at the
    effective pipeline bandwidth (just below FTP)."""
    if pairs is None:
        pairs = [
            ("supersparc", "j90"), ("ultrasparc", "j90"), ("alpha", "j90"),
            ("supersparc", "alpha"), ("ultrasparc", "alpha"),
            ("alpha", "alpha"),
        ]
    if sizes is None:
        sizes = [2**k for k in range(12, 25)]  # 4 KiB .. 16 MiB
    out: dict[str, list[ThroughputPoint]] = {}
    for client_name, server_name in pairs:
        client = machine(client_name)
        server = machine(server_name)
        catalog = lan_catalog(server)
        points = []
        for nbytes in sizes:
            spec = CallSpec(
                name=f"xfer({nbytes}B)",
                input_bytes=nbytes / 2,
                output_bytes=nbytes / 2,
                comp_seconds_1pe=0.0,
                comp_seconds_allpe=0.0,
                work_units=1.0,
            )
            record = run_one_call(
                server, lambda net, i: catalog.route_for(client, i), spec
            )
            total_time = record.comm_seconds
            points.append(ThroughputPoint(nbytes, nbytes / total_time))
        out[f"{client_name}->{server_name}"] = points
    return out


def table2_ftp() -> dict[tuple[str, str], float]:
    """Table 2: the raw FTP throughput baseline, plus the effective
    Ninf rate the marshalling pipeline sustains (Fig 5's saturation)."""
    return dict(FTP_THROUGHPUT)


def ninf_saturation(client_name: str, server_name: str) -> float:
    """The Fig 5 saturation level for a pair (bytes/s)."""
    client = machine(client_name)
    server = machine(server_name)
    return ninf_effective_bandwidth(
        ftp_throughput(client_name, server_name), client, server
    )
