"""Shared scenario machinery for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.model.machines import MachineSpec
from repro.sim.engine import Simulator
from repro.sim.network import Network, Route
from repro.simninf.calls import CallSpec, SimCallRecord
from repro.simninf.client import WorkloadClient
from repro.simninf.metrics import LoadSampler, TableRow, aggregate
from repro.simninf.server import SimNinfServer

__all__ = ["MulticlientResult", "run_multiclient_cell", "run_one_call"]

# The paper's workload constants (§4.1).
THINK_INTERVAL_S = 3.0
ISSUE_PROBABILITY = 0.5
DEFAULT_HORIZON = 300.0


@dataclass
class MulticlientResult:
    """Everything measured in one (n, c) cell."""

    row: TableRow
    records: list[SimCallRecord]
    server: SimNinfServer
    per_client_counts: list[int] = field(default_factory=list)
    # Availability accounting under injected faults (fault_rate > 0):
    # completed = len(records); issued = completed + failed_calls.
    call_attempts: int = 0
    faults_seen: int = 0
    retries: int = 0
    failed_calls: int = 0
    # Resilience accounting (DESIGN.md §3.5).
    shed_seen: int = 0
    late_calls: int = 0
    failovers: int = 0
    # Partition accounting (DESIGN.md §3.7): attempts dropped inside a
    # partition window, deterministically and RNG-free.
    partition_drops: int = 0

    @property
    def calls_issued(self) -> int:
        return len(self.records) + self.failed_calls

    @property
    def success_rate(self) -> float:
        issued = self.calls_issued
        return 1.0 if issued == 0 else len(self.records) / issued


def run_multiclient_cell(
    server_spec: MachineSpec,
    route_factory: Callable[[Network, int], Route],
    spec: CallSpec,
    c: int,
    mode: str = "task",
    n: Optional[int] = None,
    horizon: float = DEFAULT_HORIZON,
    seed: int = 1997,
    s: float = THINK_INTERVAL_S,
    p: float = ISSUE_PROBABILITY,
    switch_overhead: float = 0.0,
    site_of: Optional[Callable[[int], str]] = None,
    pooled: bool = False,
    pooled_setup: float = 0.0,
    t_setup: Optional[float] = None,
    fault_rate: float = 0.0,
    retry_attempts: int = 1,
    fault_cost: Optional[float] = None,
    max_queued: Optional[int] = None,
    dedup: bool = True,
    post_fault_rate: float = 0.0,
    call_deadline: Optional[float] = None,
    partition_windows: Sequence[tuple[float, float]] = (),
    tracer=None,
) -> MulticlientResult:
    """Run one multi-client benchmark cell and aggregate the table row.

    ``route_factory(network, client_index)`` returns the route client
    ``i`` uses -- this is where LAN vs single-site WAN vs multi-site WAN
    topologies differ.  ``pooled=True`` gives every client a keep-alive
    connection (later calls pay only ``pooled_setup`` of the per-call
    setup cost) -- the transport-layer connection-reuse ablation;
    ``t_setup`` overrides the server's per-call setup cost outright.
    ``fault_rate``/``retry_attempts``/``fault_cost`` drive the
    availability ablation: each call attempt fails with ``fault_rate``
    probability and clients retry up to ``retry_attempts`` times (see
    :class:`~repro.simninf.client.WorkloadClient`).  ``max_queued``
    bounds the server's admission queue (excess calls are shed with a
    retry-after hint), ``post_fault_rate`` loses reply frames after
    execution (``dedup`` decides whether the retry replays or
    re-executes), and ``call_deadline`` counts completed calls that
    blew the per-call budget -- the DESIGN.md §3.5 overload ablation.
    ``partition_windows`` lists ``(start, end)`` sim-time intervals during
    which every client's link is deterministically cut (no RNG draws, so
    the seeded fault schedule outside the windows is unchanged -- the
    DESIGN.md §3.7 partition mirror).  ``tracer`` hands
    the server a :class:`~repro.obs.Tracer` so every simulated call
    emits the OBSERVABILITY.md span schema (build it with the sim
    clock; :func:`repro.experiments.breakdown.sim_breakdown` shows how).
    """
    if c < 1:
        raise ValueError(f"need at least one client, got {c}")
    sim = Simulator()
    network = Network(sim)
    server_kwargs = {} if t_setup is None else {"t_setup": t_setup}
    server = SimNinfServer(sim, network, server_spec, mode=mode,
                           switch_overhead=switch_overhead, tracer=tracer,
                           max_queued=max_queued, dedup=dedup,
                           **server_kwargs)
    stats = server.machine.stats_window()
    LoadSampler(sim, server.machine, stats, interval=2.0)
    clients = []
    for i in range(c):
        route = route_factory(network, i)
        site = site_of(i) if site_of is not None else "lan"
        clients.append(
            WorkloadClient(sim, i, server, route, spec, s=s, p=p,
                           horizon=horizon, seed=seed, site=site,
                           pooled=pooled, pooled_setup=pooled_setup,
                           fault_rate=fault_rate,
                           retry_attempts=retry_attempts,
                           fault_cost=fault_cost,
                           post_fault_rate=post_fault_rate,
                           call_deadline=call_deadline,
                           partition_windows=partition_windows)
        )
    # Run the issuing window, then drain in-flight calls (the load
    # sampler ticks forever, so step until every client process ends).
    sim.run(until=horizon)
    while any(cl.process.alive for cl in clients):
        if not sim.step():  # pragma: no cover - sampler keeps heap alive
            break
    records: list[SimCallRecord] = []
    for client in clients:
        records.extend(client.records)
    records.sort(key=lambda r: r.submit_time)
    row = aggregate(records, n, c, stats)
    return MulticlientResult(
        row=row,
        records=records,
        server=server,
        per_client_counts=[len(cl.records) for cl in clients],
        call_attempts=sum(cl.call_attempts for cl in clients),
        faults_seen=sum(cl.faults_seen for cl in clients),
        retries=sum(cl.retries for cl in clients),
        failed_calls=sum(cl.failed_calls for cl in clients),
        shed_seen=sum(cl.shed_seen for cl in clients),
        late_calls=sum(cl.late_calls for cl in clients),
        failovers=sum(cl.failovers for cl in clients),
        partition_drops=sum(cl.partition_drops for cl in clients),
    )


def run_one_call(server_spec: MachineSpec,
                 route_factory: Callable[[Network, int], Route],
                 spec: CallSpec, mode: str = "task") -> SimCallRecord:
    """Fire a single uncontended call and return its record (Figs 3-5)."""
    sim = Simulator()
    network = Network(sim)
    server = SimNinfServer(sim, network, server_spec, mode=mode)
    route = route_factory(network, 0)
    done: list[SimCallRecord] = []

    def body():
        record = SimCallRecord(spec=spec, client_id=0, submit_time=sim.now)
        yield from server.execute_call(record, route)
        done.append(record)

    sim.process(body())
    sim.run()
    (record,) = done
    return record
