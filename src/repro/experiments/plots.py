"""ASCII rendering of the paper's figures.

Dependency-free terminal plots so `ninf-experiment fig3 --plot` (and the
report) can show the *figures*, not just the numbers: line charts for
Figs 3/4/5/11 and (n, c) heat surfaces for Figs 7/8.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = ["line_chart", "surface_chart"]

_SYMBOLS = "ox+*#@%&"
_SHADES = " .:-=+*#%@"


def line_chart(series: Mapping[str, Sequence[tuple[float, float]]],
               width: int = 72, height: int = 20,
               title: str = "", x_label: str = "n",
               y_label: str = "Mflops",
               logy: bool = False) -> str:
    """Render named (x, y) series as an ASCII chart.

    >>> print(line_chart({"a": [(0, 0), (1, 1)]}, width=10, height=4))
    ... # doctest: +SKIP
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _y in points]
    ys = [max(y, 1e-12) if logy else y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_transform = (lambda v: math.log10(max(v, 1e-12))) if logy else (lambda v: v)
    ty = [y_transform(y) for y in ys]
    y_lo, y_hi = min(ty), max(ty)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        symbol = _SYMBOLS[index % len(_SYMBOLS)]
        for x, y in values:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y_transform(max(y, 1e-12) if logy else y) - y_lo)
                      / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = symbol

    lines = []
    if title:
        lines.append(title)
    top = f"{(10**y_hi if logy else y_hi):.3g}"
    bottom = f"{(10**y_lo if logy else y_lo):.3g}"
    gutter = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else bottom if i == height - 1 else ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    centre = max(1, width - 20)
    lines.append(f"{'':>{gutter}}  {x_lo:<10.4g}{x_label:^{centre}}"
                 f"{x_hi:>10.4g}")
    legend = "   ".join(f"{_SYMBOLS[i % len(_SYMBOLS)]}={name}"
                        for i, name in enumerate(series))
    lines.append(f"{'':>{gutter}}  [{y_label}{', log' if logy else ''}]  "
                 f"{legend}")
    return "\n".join(lines)


def surface_chart(surface: Mapping[tuple[float, float], float],
                  title: str = "", x_label: str = "c",
                  y_label: str = "n",
                  value_label: str = "Mflops") -> str:
    """Render an (y, x) -> value grid as a shaded ASCII heat map.

    Keys are (y, x) pairs -- e.g. the (n, c) cells of Fig 7/8 -- shaded
    relative to the maximum value.
    """
    if not surface:
        raise ValueError("nothing to plot")
    ys = sorted({y for y, _x in surface})
    xs = sorted({x for _y, x in surface})
    peak = max(surface.values())
    if peak <= 0:
        peak = 1.0
    lines = []
    if title:
        lines.append(title)
    header = f"{y_label + chr(92) + x_label:>8} " + "".join(
        f"{x:>8.6g}" for x in xs
    )
    lines.append(header)
    for y in reversed(ys):
        cells = []
        for x in xs:
            value = surface.get((y, x))
            if value is None:
                cells.append(f"{'':>8}")
                continue
            shade = _SHADES[
                min(len(_SHADES) - 1,
                    int(value / peak * (len(_SHADES) - 1) + 0.5))
            ]
            cells.append(f"{value:>6.4g} {shade}")
        lines.append(f"{y:>8.6g} " + "".join(cells))
    lines.append(f"(shade = value / max; max {value_label} = {peak:.4g})")
    return "\n".join(lines)
