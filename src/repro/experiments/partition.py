"""Partition ablation: directory availability through a network split.

The paper's WAN chapters measure a *degraded* network; this driver
measures a *partitioned* one -- the failure mode the §3.7 directory
layer exists for.  Three live-loopback cells run the same deterministic
schedule of pick requests against real metaserver processes while a
:class:`~repro.transport.PartitionMap` cuts links mid-run:

- ``single``: one metaserver, no client cache -- the pre-§3.7
  configuration.  While the client <-> metaserver link is down, every
  MS_PICK fails; availability collapses to the un-partitioned fraction
  of the run.
- ``replicated``: two gossiping replicas plus the client's pick cache
  and per-replica breakers.  The partition isolates one replica
  entirely (clients, heartbeats, and gossip); picks ride the other
  replica and availability stays at ~100%.
- ``replicated+degraded``: the client itself is cut off from *every*
  replica.  Stale-while-revalidate serves cached placements for the
  whole window (``ninf_client_degraded_mode`` pins to 1); availability
  holds while freshness, not availability, degrades.

Everything meaningful is deterministic: partitions are state (no RNG
draws), leases/phi/breakers/cache all run on one virtual clock advanced
in fixed steps, and heartbeats/gossip fire on fixed step counts --
so equal arguments reproduce equal tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metaserver import MetaClient, Metaserver, PickCache
from repro.obs import MetricsRegistry
from repro.protocol.errors import ProtocolError, RemoteError
from repro.server import HeartbeatReporter, NinfServer, Registry
from repro.transport import CircuitBreaker, FaultPlan, PartitionMap

__all__ = ["PartitionCell", "format_partition", "partition_ablation"]


@dataclass(frozen=True)
class PartitionCell:
    """One configuration's run through the partition schedule."""

    config: str
    replicas: int
    cached: bool
    steps: int
    partition_steps: int
    picks_attempted: int
    picks_served: int
    picks_degraded: int
    availability: float
    partition_drops: int
    heartbeats_accepted: int
    converged: bool


class _VirtualClock:
    """A manually advanced clock shared by every §3.7 component."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        self._now += dt


def _noop_registry() -> Registry:
    registry = Registry()
    registry.register(
        'Define probe(mode_in int n, mode_out int m) '
        '"placement-probe no-op" Calls "C" probe(n, m);',
        lambda n, m: int(n),
    )
    return registry


def _run_cell(config: str, replicated: bool, total_cut: bool,
              cached: bool, steps: int,
              window: tuple[float, float]) -> PartitionCell:
    """One live-loopback run.  ``window`` is a (start, end) step
    fraction during which the partition is in force."""
    dt = 0.1                   # virtual seconds per step
    beat_every = 10            # heartbeat cadence: 1.0 virtual seconds
    gossip_every = 10
    clock = _VirtualClock()
    pmap = PartitionMap()
    cut_from = int(window[0] * steps)
    cut_until = int(window[1] * steps)

    servers: list[Metaserver] = []
    with NinfServer(_noop_registry(), num_pes=2) as worker:
        try:
            n_replicas = 2 if replicated else 1
            for _ in range(n_replicas):
                ms = Metaserver(poll_interval=3600.0,
                                gossip_interval=3600.0,
                                clock=clock.now)
                ms.start()
                servers.append(ms)
            addrs = [ms.address for ms in servers]
            if replicated:
                # Peer the replicas both ways; gossip is driven by
                # step count below, not the (never-started) thread.
                servers[0].peers.append(addrs[1])
                servers[1].peers.append(addrs[0])
                for ms, addr in zip(servers, addrs):
                    ms.dial = FaultPlan(partitions=pmap,
                                        src=addr).connector
            reporter = HeartbeatReporter(
                worker, metaservers=addrs, interval=beat_every * dt,
                lease_factor=3.0, epoch=1,
                dial=FaultPlan(partitions=pmap, src="server").connector)
            metrics = MetricsRegistry()
            meta = MetaClient(
                replicas=addrs,
                breaker=CircuitBreaker(threshold=1, cooldown=1.0,
                                       clock=clock.now),
                cache=(PickCache(ttl=0.5, clock=clock.now)
                       if cached else None),
                metrics=metrics,
                fault_plan=FaultPlan(partitions=pmap, src="client"))

            served = attempted = degraded = beats_ok = 0
            isolated = False
            with meta:
                reporter.beat_now()  # both directories learn the worker
                for step in range(steps):
                    clock.advance(dt)
                    in_window = cut_from <= step < cut_until
                    if in_window and not isolated:
                        if total_cut:
                            pmap.isolate("client")
                        else:
                            pmap.isolate(addrs[0])
                        isolated = True
                    elif not in_window and isolated:
                        pmap.heal()
                        isolated = False
                    if step % beat_every == 0:
                        beats_ok += reporter.beat_now()
                    if replicated and step % gossip_every == 5:
                        for ms in servers:
                            ms.gossip_now()
                    attempted += 1
                    try:
                        meta.pick("probe")
                    except (OSError, ProtocolError, RemoteError):
                        continue
                    served += 1
                    if meta.degraded:
                        degraded += 1
                # Post-heal anti-entropy: a restarted/partitioned
                # replica must converge before the run is judged.
                if replicated:
                    for ms in servers:
                        ms.gossip_now()

            worker_key = worker.address
            seqs = {ms.directory.get(*worker_key).seq
                    if ms.directory.get(*worker_key) else -1
                    for ms in servers}
            converged = len(seqs) == 1 and -1 not in seqs
        finally:
            for ms in servers:
                ms.stop()

    return PartitionCell(
        config=config,
        replicas=len(addrs),
        cached=cached,
        steps=steps,
        partition_steps=max(0, cut_until - cut_from),
        picks_attempted=attempted,
        picks_served=served,
        picks_degraded=degraded,
        availability=served / attempted if attempted else 0.0,
        partition_drops=pmap.drops_total,
        heartbeats_accepted=beats_ok,
        converged=converged,
    )


def partition_ablation(steps: Optional[int] = None, quick: bool = False,
                       window: tuple[float, float] = (0.35, 0.65),
                       ) -> list[PartitionCell]:
    """Run the three partition cells on the live loopback stack.

    ``window`` is the (start, end) fraction of the run the partition
    covers; the default cuts the middle 30%.  Deterministic: partition
    state consumes no randomness and all timing is virtual.
    """
    n = steps if steps is not None else (120 if quick else 300)
    return [
        _run_cell("single", replicated=False, total_cut=False,
                  cached=False, steps=n, window=window),
        _run_cell("replicated", replicated=True, total_cut=False,
                  cached=True, steps=n, window=window),
        _run_cell("replicated+degraded", replicated=True, total_cut=True,
                  cached=True, steps=n, window=window),
    ]


def format_partition(cells: Sequence[PartitionCell]) -> str:
    """Markdown table of the ablation (the EXPERIMENTS.md rendering)."""
    lines = [
        "| config | replicas | cache | partitioned steps | picks "
        "| served | degraded | availability | converged |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for cell in cells:
        lines.append(
            f"| {cell.config} | {cell.replicas} "
            f"| {'on' if cell.cached else 'off'} "
            f"| {cell.partition_steps}/{cell.steps} "
            f"| {cell.picks_attempted} | {cell.picks_served} "
            f"| {cell.picks_degraded} "
            f"| {100 * cell.availability:.1f}% "
            f"| {'yes' if cell.converged else 'no'} |"
        )
    return "\n".join(lines)
