"""Ablations for the design choices the paper discusses (§5).

- :func:`sjf_vs_fcfs` -- §5.2: "By predicting the computation and
  communication time of a Ninf_call task using IDL and server trace
  information, we could perform Shortest-Job-First (SJF) scheduling,
  improving the response time and utilization considerably."  We run a
  mixed workload (small and large Linpack calls) through the simulated
  server with FCFS vs SJF admission and compare small-call latency.
- :func:`scheduler_comparison_wan` -- §4.2.2/§6: load-only placement
  (NetSolve-style) vs bandwidth-aware placement when one server is
  close (LAN) and one is far (WAN).  The paper: load-based "might
  partially work for LAN situations, but would not scale to WAN".
- :func:`fpfs_vs_fcfs_packing` -- §5.3: with mixed-width jobs on a
  multiprocessor, FCFS head-of-line blocking idles PEs that FPFS uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.machines import machine
from repro.model.network import lan_catalog, singlesite_wan_catalog
from repro.server.scheduling import (
    FCFSPolicy,
    FPFSPolicy,
    SchedulingPolicy,
    SJFPolicy,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.simninf.calls import CallSpec, SimCallRecord, linpack_spec
from repro.simninf.server import SimNinfServer

__all__ = [
    "PolicyOutcome",
    "PlacementOutcome",
    "fpfs_vs_fcfs_packing",
    "scheduler_comparison_wan",
    "sjf_vs_fcfs",
]


@dataclass(frozen=True)
class PolicyOutcome:
    """Latency statistics of one admission policy run."""

    policy: str
    mean_elapsed_small: float
    mean_elapsed_large: float
    mean_wait_small: float
    makespan: float


def _run_policy_mix(policy: SchedulingPolicy, small: CallSpec,
                    large: CallSpec, arrivals: Sequence[tuple[float, bool]],
                    max_concurrent: int = 4) -> PolicyOutcome:
    """Replay a fixed arrival trace through the simulated J90."""
    sim = Simulator()
    network = Network(sim)
    server = SimNinfServer(sim, network, machine("j90"), mode="task",
                           policy=policy, max_concurrent=max_concurrent)
    catalog = lan_catalog(machine("j90"))
    records: list[tuple[bool, SimCallRecord]] = []

    def one(delay: float, is_small: bool, index: int):
        yield sim.timeout(delay)
        spec = small if is_small else large
        record = SimCallRecord(spec=spec, client_id=index, submit_time=sim.now)
        route = catalog.route_for(machine("alpha"), index)
        yield from server.execute_call(record, route)
        records.append((is_small, record))

    for index, (delay, is_small) in enumerate(arrivals):
        sim.process(one(delay, is_small, index))
    sim.run()
    small_records = [r for s, r in records if s]
    large_records = [r for s, r in records if not s]
    return PolicyOutcome(
        policy=policy.name,
        mean_elapsed_small=float(np.mean([r.elapsed for r in small_records])),
        mean_elapsed_large=float(np.mean([r.elapsed for r in large_records])),
        mean_wait_small=float(np.mean([r.wait for r in small_records])),
        makespan=max(r.complete_time for _, r in records),
    )


def sjf_vs_fcfs(num_bursts: int = 6, seed: int = 7
                ) -> dict[str, PolicyOutcome]:
    """Mixed small/large Linpack bursts under FCFS vs SJF admission.

    Each burst delivers a batch of large (n=1400) calls -- more than the
    execution slots -- just before a batch of small (n=300) calls, so
    large work is still queued when the small calls arrive; FCFS makes
    the small calls wait behind it, SJF lets them jump ahead (§5.2).
    """
    j90 = machine("j90")
    small = linpack_spec(j90, 300)
    large = linpack_spec(j90, 1400)
    rng = np.random.default_rng(seed)
    arrivals: list[tuple[float, bool]] = []
    for burst in range(num_bursts):
        base = burst * 120.0
        for _ in range(8):
            arrivals.append((base + rng.uniform(0.0, 0.5), False))
        for _ in range(6):
            arrivals.append((base + 0.6 + rng.uniform(0.0, 0.5), True))
    return {
        "fcfs": _run_policy_mix(FCFSPolicy(), small, large, arrivals),
        "sjf": _run_policy_mix(SJFPolicy(), small, large, arrivals),
    }


def fpfs_vs_fcfs_packing(seed: int = 11) -> dict[str, PolicyOutcome]:
    """Mixed-width jobs on the 4-PE J90: wide (4-PE) + narrow (1-PE).

    The §5.3 scenario: a wide SPMD job arrives while two PEs are busy
    with long narrow jobs.  FCFS holds the queue for the wide job,
    idling the two free PEs that the later short narrow jobs could use;
    FPFS backfills them.  The measurable effect is short-narrow-job
    latency (and makespan).
    """
    j90 = machine("j90")
    short_narrow = linpack_spec(j90, 300).with_pes(1)
    wide = linpack_spec(j90, 1200).with_pes(4)
    long_narrow = linpack_spec(j90, 1400).with_pes(1)
    rng = np.random.default_rng(seed)
    arrivals: list[tuple[float, CallSpec, bool]] = []
    for burst in range(5):
        base = burst * 120.0
        for _ in range(2):  # two long narrow jobs occupy two slots
            arrivals.append((base, long_narrow, False))
        arrivals.append((base + 0.3, wide, False))  # wide blocks FCFS
        for _ in range(6):  # short narrow jobs that FPFS can backfill
            arrivals.append((base + 0.6 + rng.uniform(0.0, 0.5),
                             short_narrow, True))

    def run(policy: SchedulingPolicy) -> PolicyOutcome:
        sim = Simulator()
        network = Network(sim)
        server = SimNinfServer(sim, network, j90, mode="task",
                               policy=policy, max_concurrent=4)
        catalog = lan_catalog(j90)
        records: list[tuple[bool, SimCallRecord]] = []

        def one(delay: float, spec: CallSpec, is_small: bool, index: int):
            yield sim.timeout(delay)
            record = SimCallRecord(spec=spec, client_id=index,
                                   submit_time=sim.now)
            route = catalog.route_for(machine("alpha"), index)
            yield from server.execute_call(record, route)
            records.append((is_small, record))

        for index, (delay, spec, is_small) in enumerate(arrivals):
            sim.process(one(delay, spec, is_small, index))
        sim.run()
        small_records = [r for s, r in records if s]
        large_records = [r for s, r in records if not s]
        return PolicyOutcome(
            policy=policy.name,
            mean_elapsed_small=float(np.mean([r.elapsed
                                              for r in small_records])),
            mean_elapsed_large=float(np.mean([r.elapsed
                                              for r in large_records])),
            mean_wait_small=float(np.mean([r.wait for r in small_records])),
            makespan=max(r.complete_time for _, r in records),
        )

    return {"fcfs": run(FCFSPolicy()), "fpfs": run(FPFSPolicy())}


@dataclass(frozen=True)
class PlacementOutcome:
    """Result of one metaserver placement policy in the WAN scenario."""

    policy: str
    mean_elapsed: float
    near_fraction: float  # fraction of calls placed on the near server


def scheduler_comparison_wan(n: int = 1000, calls: int = 24,
                             near_load: int = 2) -> dict[str, PlacementOutcome]:
    """Load-based vs bandwidth-aware placement, one near + one far server.

    The near server is on the LAN (fast link) but carries ``near_load``
    resident tasks; the far server is idle but behind the 0.13 MB/s WAN
    path.  Load-based placement prefers the idle far server and pays
    the transfer; bandwidth-aware placement predicts total completion
    time and keeps communication-heavy calls near -- the §4.2.2 lesson.
    """
    j90 = machine("j90")
    spec = linpack_spec(j90, n)

    def run(policy: str) -> PlacementOutcome:
        sim = Simulator()
        network = Network(sim)
        near = SimNinfServer(sim, network, j90, mode="data")
        far = SimNinfServer(sim, network, j90, mode="data")
        lan = lan_catalog(j90)
        wan = singlesite_wan_catalog(j90)
        # Background load on the near server.
        for _ in range(near_load):
            sim.process(near.machine.run(1e9, max_pes=1.0))

        comm_time_near = spec.comm_bytes / 2.4e6
        comm_time_far = spec.comm_bytes / 0.13e6
        records: list[SimCallRecord] = []
        placed_near = 0

        def one(index: int, delay: float):
            nonlocal placed_near
            yield sim.timeout(delay)
            if policy == "load":
                # NetSolve-style: least runnable per PE.
                near_score = near.machine.cpu.active_jobs / j90.num_pes
                far_score = far.machine.cpu.active_jobs / j90.num_pes
                use_near = near_score <= far_score
            else:
                # Bandwidth-aware: predicted comm + contended compute.
                t_near = comm_time_near + spec.comp_seconds_allpe * (
                    1 + near.machine.cpu.active_jobs)
                t_far = comm_time_far + spec.comp_seconds_allpe * (
                    1 + far.machine.cpu.active_jobs)
                use_near = t_near <= t_far
            server = near if use_near else far
            route = (lan.route_for(machine("alpha"), index) if use_near
                     else wan.route_for_site("ochau", index))
            if use_near:
                placed_near += 1
            record = SimCallRecord(spec=spec, client_id=index,
                                   submit_time=sim.now)
            yield from server.execute_call(record, route)
            records.append(record)

        for index in range(calls):
            sim.process(one(index, index * 4.0))
        sim.run()
        return PlacementOutcome(
            policy=policy,
            mean_elapsed=float(np.mean([r.elapsed for r in records])),
            near_fraction=placed_near / calls,
        )

    return {"load": run("load"), "bandwidth": run("bandwidth")}
