"""EP experiments: Table 8 (multi-client LAN/WAN) and Fig 11 (metaserver).

Table 8: the EP kernel (2^24 pairs per call, task-parallel on the
4-PE J90) under LAN and single-site WAN multi-client load.  Because EP
ships O(1) bytes, LAN and WAN performance are nearly identical and both
degrade only once c exceeds the PE count.

Fig 11: metaserver-driven task-parallel EP across a 32-node Alpha
cluster, with per-call dispatch overhead (the Java-prototype cost that
makes the small "sample" size slow down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import run_multiclient_cell
from repro.experiments.lan_multiclient import LanTable
from repro.model.machines import machine
from repro.model.network import lan_catalog, singlesite_wan_catalog
from repro.model.perf import EPModel
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.simninf.calls import CallSpec, ep_spec
from repro.simninf.metaserver import SimMetaserver, TransactionResult
from repro.simninf.server import SimNinfServer

__all__ = ["SpeedupPoint", "fig11_metaserver", "table8_ep"]

EP_HORIZON = 2800.0
PAPER_CLIENTS = (1, 2, 4, 8, 16)


def table8_ep(clients: Sequence[int] = PAPER_CLIENTS, m: int = 24,
              horizon: float = EP_HORIZON,
              seed: int = 1997) -> dict[str, LanTable]:
    """Table 8: multi-client EP on the J90, LAN and single-site WAN."""
    server = machine("j90")
    spec = ep_spec(server, m=m)
    out: dict[str, LanTable] = {}

    lan_table = LanTable(name="Table 8 (LAN): multi-client EP")
    client = machine("alpha")
    for c in clients:
        catalog = lan_catalog(server)
        lan_table.cells[(m, c)] = run_multiclient_cell(
            server, lambda net, i, _c=catalog, _cl=client: _c.route_for(_cl, i),
            spec, c, mode="task", n=m, horizon=horizon, seed=seed,
        )
    out["lan"] = lan_table

    wan_table = LanTable(name="Table 8 (WAN): multi-client EP, single site")
    for c in clients:
        catalog = singlesite_wan_catalog(server)
        wan_table.cells[(m, c)] = run_multiclient_cell(
            server, lambda net, i, _c=catalog: _c.route_for_site("ochau", i),
            spec, c, mode="task", n=m, horizon=horizon, seed=seed,
            site_of=lambda i: "ochau",
        )
    out["wan"] = wan_table
    return out


@dataclass(frozen=True)
class SpeedupPoint:
    processors: int
    makespan: float
    speedup: float
    effective_ops_per_second: float


def fig11_metaserver(m: int, processors: Sequence[int] = (1, 2, 4, 8, 16, 32),
                     t_dispatch: float = 0.1) -> list[SpeedupPoint]:
    """Fig 11: EP of size 2^m split over p Alpha-cluster nodes.

    The transaction issues one ``Ninf_call("ep", ...)`` per node; the
    metaserver dispatches them sequentially at ``t_dispatch`` seconds
    each, so small problems stop scaling (and regress) while class A/B
    stay near-linear -- the paper's observed shape.
    """
    node = machine("alpha-node")
    results: list[SpeedupPoint] = []
    baseline: Optional[float] = None
    for p in processors:
        sim = Simulator()
        network = Network(sim)
        catalog = lan_catalog(node)
        servers = []
        routes = []
        for i in range(p):
            servers.append(SimNinfServer(sim, network, node, mode="task"))
            routes.append(catalog.route_for(node, i))
        meta = SimMetaserver(sim, network, servers, routes,
                             t_dispatch=t_dispatch)
        # Each node gets 2^m / p pairs: comp time scales 1/p, comm O(1).
        per_node = EPModel(node, m=m)
        slice_spec = CallSpec(
            name=f"ep-slice(m={m},p={p})",
            input_bytes=per_node.request_bytes,
            output_bytes=per_node.reply_bytes,
            comp_seconds_1pe=per_node.comp_time(pes=1) / p,
            comp_seconds_allpe=per_node.comp_time(pes=1) / p,
            work_units=per_node.operations() / p,
        )
        done: list[TransactionResult] = []
        meta.run_transaction([slice_spec] * p, done.append)
        sim.run()
        (result,) = done
        if baseline is None:
            baseline = result.makespan
        results.append(SpeedupPoint(
            processors=p,
            makespan=result.makespan,
            speedup=baseline / result.makespan,
            effective_ops_per_second=per_node.operations() / result.makespan,
        ))
    return results
