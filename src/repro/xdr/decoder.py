"""XDR decoding (RFC 4506) with strict bounds and padding checks.

The decoder never copies while it walks: it holds one ``memoryview``
over the incoming frame and slices windows out of it (:meth:`_take`),
so a bulk array decode touches the payload bytes exactly once -- in the
vectorized byteswap that builds the final native-order container (see
:mod:`repro.xdr.bulk`).  :meth:`XdrDecoder.unpack_opaque_view` extends
the same property to nested payloads: a CALL body can be unmarshalled
straight out of the enclosing frame without materialising an
intermediate ``bytes``.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.xdr import bulk
from repro.xdr.encoder import NUMPY_WIRE_DTYPES
from repro.xdr.errors import XdrError

try:  # optional at the XDR layer; required only for rank-N ndarrays
    import numpy as np
except ImportError:  # pragma: no cover - exercised via bulk.FORCE_STDLIB
    np = None

__all__ = ["XdrDecoder"]

_WIRE_TO_NATIVE = {wire: dtype for dtype, wire in NUMPY_WIRE_DTYPES.items()}

# Reject absurd length words before allocating (protocol sanity limit).
MAX_REASONABLE_LENGTH = 1 << 33


class XdrDecoder:
    """Decodes XDR values from a byte buffer.

    Accepts any bytes-like source (``bytes``, ``bytearray``,
    ``memoryview``) -- in particular the zero-copy payload view the
    framing layer hands back.

    >>> dec = XdrDecoder(b"\\x00\\x00\\x00\\x07")
    >>> dec.unpack_int()
    7
    >>> dec.done()
    """

    def __init__(self, data):
        self._data = memoryview(data)
        self._pos = 0

    # -- plumbing ---------------------------------------------------------------

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> None:
        """Assert the buffer is fully consumed (trailing bytes = protocol bug)."""
        if self._pos != len(self._data):
            raise XdrError(
                f"unconsumed XDR data: {len(self._data) - self._pos} bytes left"
            )

    def _take(self, n: int) -> memoryview:
        if n < 0 or n > MAX_REASONABLE_LENGTH:
            raise XdrError(f"implausible XDR length {n}")
        if self._pos + n > len(self._data):
            raise XdrError(
                f"truncated XDR data: need {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        view = self._data[self._pos : self._pos + n]
        self._pos += n
        return view

    def _skip_pad(self, n: int) -> None:
        pad = (4 - n % 4) % 4
        if pad:
            padding = bytes(self._take(pad))
            if padding != b"\x00" * pad:
                raise XdrError(f"nonzero XDR padding {padding!r}")

    # -- integral types ------------------------------------------------------------

    def unpack_int(self) -> int:
        """Signed 32-bit integer."""
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint(self) -> int:
        """Unsigned 32-bit integer."""
        return struct.unpack(">I", self._take(4))[0]

    def unpack_hyper(self) -> int:
        """Signed 64-bit integer."""
        return struct.unpack(">q", self._take(8))[0]

    def unpack_uhyper(self) -> int:
        """Unsigned 64-bit integer."""
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        """Boolean (strict 0/1)."""
        value = self.unpack_int()
        if value not in (0, 1):
            raise XdrError(f"invalid XDR bool {value}")
        return bool(value)

    def unpack_enum(self) -> int:
        """Enumeration (same wire form as int)."""
        return self.unpack_int()

    # -- floating point ---------------------------------------------------------------

    def unpack_float(self) -> float:
        """IEEE-754 single precision."""
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        """IEEE-754 double precision."""
        return struct.unpack(">d", self._take(8))[0]

    # -- opaque and string ---------------------------------------------------------------

    def unpack_fopaque(self, n: int) -> bytes:
        """Fixed-length opaque of exactly ``n`` bytes."""
        data = bytes(self._take(n))
        self._skip_pad(n)
        return data

    def unpack_opaque(self) -> bytes:
        """Variable-length opaque (length word + bytes)."""
        n = self.unpack_uint()
        return self.unpack_fopaque(n)

    def unpack_opaque_view(self) -> memoryview:
        """Variable-length opaque as a zero-copy window.

        Same wire position advance as :meth:`unpack_opaque`, but the
        body comes back as a ``memoryview`` into the source buffer --
        nothing is copied.  The view is only valid while the source
        buffer is alive; callers that keep the payload past the frame's
        lifetime must ``bytes()`` it themselves.  This is the seam the
        CALL/RESULT paths use to unmarshal nested argument blocks
        in place.
        """
        n = self.unpack_uint()
        view = self._take(n)
        self._skip_pad(n)
        return view

    def unpack_string(self) -> str:
        """UTF-8 string as variable opaque."""
        raw = self.unpack_opaque()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XdrError(f"invalid UTF-8 in XDR string: {exc}") from exc

    # -- arrays ----------------------------------------------------------------------

    def unpack_farray(self, n: int, unpack_item: Callable) -> list:
        """Fixed-length array of ``n`` elements."""
        return [unpack_item() for _ in range(n)]

    def unpack_array(self, unpack_item: Callable) -> list:
        """Variable-length array (length word + elements)."""
        n = self.unpack_uint()
        if n > MAX_REASONABLE_LENGTH:
            raise XdrError(f"implausible array length {n}")
        return self.unpack_farray(n, unpack_item)

    # -- bulk fast paths ------------------------------------------------------------------

    def unpack_ndarray(self):
        """Inverse of :meth:`XdrEncoder.pack_ndarray`.  NumPy only --
        the stdlib fallback covers just the 1-D bulk paths."""
        if np is None:  # pragma: no cover - stdlib-only environments
            raise XdrError("ndarray unpacking requires numpy "
                           "(stdlib fallback covers 1-D bulk arrays only)")
        ndim = self.unpack_uint()
        if ndim > 32:
            raise XdrError(f"implausible ndarray rank {ndim}")
        shape = tuple(self.unpack_uint() for _ in range(ndim))
        wire = self.unpack_string()
        native = _WIRE_TO_NATIVE.get(wire)
        if native is None:
            raise XdrError(f"unknown ndarray wire dtype {wire!r}")
        nbytes = self.unpack_uint()
        expected = int(np.prod(shape, dtype=np.int64)) * np.dtype(wire).itemsize
        if nbytes != expected:
            raise XdrError(
                f"ndarray payload size mismatch: header says {nbytes}, "
                f"shape {shape} of {wire} needs {expected}"
            )
        payload = self._take(nbytes)
        self._skip_pad(nbytes)
        arr = np.frombuffer(payload, dtype=wire).reshape(shape)
        return arr.astype(native, copy=True)

    def unpack_double_array(self):
        """Variable array of doubles via the bulk vectorized path.

        ``np.ndarray[float64]`` on the NumPy engine, ``array.array('d')``
        on the stdlib fallback (same values, same indexing protocol).
        """
        n = self.unpack_uint()
        payload = self._take(8 * n)
        return bulk.unpack_doubles(payload, n)

    def unpack_int_array(self):
        """Variable array of 32-bit ints via the bulk vectorized path."""
        n = self.unpack_uint()
        payload = self._take(4 * n)
        return bulk.unpack_ints(payload, n)
