"""Sun XDR (RFC 4506) external data representation, from scratch.

Ninf RPC ships all arguments as XDR on TCP/IP ("The underlying transfer
protocol is Sun XDR on TCP/IP, allowing easy porting on most major
supercomputer platforms").  This package implements the XDR primitives
the Ninf protocol needs, plus NumPy fast paths so that marshalling a
dense matrix is a single byteswap-and-copy rather than a Python loop --
the paper's Fig 5 result (XDR overhead does not significantly affect
throughput) only holds if marshalling is near memcpy speed.

- :class:`XdrEncoder` / :class:`XdrDecoder`: streaming pack/unpack of
  int, unsigned, hyper, bool, enum, float, double, string, opaque
  (fixed and variable), arrays, and NumPy arrays/matrices.
- :exc:`XdrError`: malformed or truncated data.
"""

from repro.xdr.encoder import XdrEncoder
from repro.xdr.decoder import XdrDecoder
from repro.xdr.errors import XdrError

__all__ = ["XdrDecoder", "XdrEncoder", "XdrError"]
