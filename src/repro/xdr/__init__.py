"""Sun XDR (RFC 4506) external data representation, from scratch.

Ninf RPC ships all arguments as XDR on TCP/IP ("The underlying transfer
protocol is Sun XDR on TCP/IP, allowing easy porting on most major
supercomputer platforms").  This package implements the XDR primitives
the Ninf protocol needs, plus bulk fast paths so that marshalling a
dense matrix is a single byteswap-and-copy rather than a Python loop --
the paper's Fig 5 result (XDR overhead does not significantly affect
throughput) only holds if marshalling is near memcpy speed.

- :class:`XdrEncoder` / :class:`XdrDecoder`: streaming pack/unpack of
  int, unsigned, hyper, bool, enum, float, double, string, opaque
  (fixed and variable), arrays, and NumPy arrays/matrices.  The encoder
  accumulates into one growing ``bytearray`` exposed zero-copy via
  ``getbuffer()``; the decoder walks a ``memoryview`` and never copies
  until a value is materialised.
- :mod:`repro.xdr.bulk`: the vectorized engine behind the array paths.
- :exc:`XdrError`: malformed or truncated data.

Fast-path engine selection (see PROTOCOL.md §"XDR encoding rules"):

1. **NumPy** when ``import numpy`` succeeds and ``NINF_XDR_STDLIB`` is
   unset -- bulk arrays are byteswapped-and-copied in one fused pass
   directly into / out of the frame buffer, and rank-N ``ndarray``
   packing (``pack_ndarray``/``unpack_ndarray``) is available.
2. **Pure stdlib** otherwise (NumPy missing, or ``NINF_XDR_STDLIB=1``
   in the environment, or ``repro.xdr.bulk.FORCE_STDLIB`` flipped at
   runtime) -- 1-D double/int bulk arrays still run vectorized through
   :mod:`array` ``byteswap()``; decoded bulk arrays come back as
   :class:`array.array` instead of ``ndarray``; rank-N ndarray packing
   raises :exc:`XdrError`.

Both engines emit byte-identical wire data -- negotiation is purely
local, never visible to the peer, and the property tests
(``tests/xdr/test_bulk.py``) hold the two engines and the scalar-loop
oracle to byte equality.
"""

from repro.xdr.encoder import XdrEncoder
from repro.xdr.decoder import XdrDecoder
from repro.xdr.errors import XdrError
from repro.xdr import bulk

__all__ = ["XdrDecoder", "XdrEncoder", "XdrError", "bulk"]
