"""Bulk (vectorized) XDR codecs for homogeneous numeric arrays.

The paper's call-time breakdown shows argument marshal/transfer
dominating Linpack-style calls; a per-element Python pack loop makes
that cost *worse* than the 1997 C implementation it reproduces.  This
module is the engine behind the fast paths in
:class:`~repro.xdr.encoder.XdrEncoder` /
:class:`~repro.xdr.decoder.XdrDecoder`: whole arrays are converted to
or from big-endian wire order in one vectorized pass, written directly
into the caller's preallocated frame buffer (a ``bytearray``), with no
per-element Python bytecode and no intermediate list-of-chunks copies.

Two implementations, one wire format:

- **NumPy** (preferred, engaged when ``numpy`` imports): the
  destination region of the frame buffer is viewed through
  ``np.frombuffer`` as a big-endian array and assigned in one
  ``dest[:] = src`` statement -- NumPy fuses the byteswap and the copy,
  so throughput is memory-bandwidth bound.  Decoding is the mirror:
  ``np.frombuffer`` over the payload ``memoryview`` plus one ``astype``
  to native order.
- **Pure stdlib** (fallback, engaged when NumPy is unavailable or
  :data:`FORCE_STDLIB` is set): :class:`array.array` +
  ``array.byteswap()``, which is a single C loop.  Only the dtypes
  :mod:`array` can express are supported (``d``/``f``/``i``/``q`` and
  unsigned variants); complex dtypes always require NumPy.  Decoded
  arrays come back as :class:`array.array` instances -- same element
  values, same indexing protocol, different container type (callers
  that need an ``ndarray`` must run under NumPy; the RPC stack does).

Both paths produce and consume byte-identical wire data, a property
``tests/xdr/test_bulk.py`` asserts with Hypothesis round trips
(including NaN/inf payloads, which must survive bit-exactly).

Endianness: XDR is big-endian.  Whether a byteswap is needed is decided
by :func:`swap_needed` against :data:`sys.byteorder`; the tests
simulate a big-endian host by calling the swap helpers with an explicit
``byteorder`` argument, so the (rare) big-endian code path is covered
on little-endian CI machines.

Opt-outs: set the environment variable ``NINF_XDR_STDLIB=1`` before
import (or flip :data:`FORCE_STDLIB` at runtime) to force the stdlib
path -- the knob the property tests and the ``ninf-bench marshal``
ablation use.
"""

from __future__ import annotations

import array
import os
import struct
import sys
from typing import Sequence, Union

from repro.xdr.errors import XdrError

try:  # NumPy is optional at the XDR layer (stdlib fallback below).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via FORCE_STDLIB
    _np = None

__all__ = [
    "FORCE_STDLIB",
    "HAVE_NUMPY",
    "pack_doubles_into",
    "pack_ints_into",
    "swap_needed",
    "unpack_doubles",
    "unpack_ints",
    "using_numpy",
]

HAVE_NUMPY = _np is not None

#: Runtime override: ``True`` forces the pure-stdlib path even when
#: NumPy is importable.  Seeded from ``NINF_XDR_STDLIB`` at import; the
#: property tests flip it to compare both engines on one host.
FORCE_STDLIB = os.environ.get("NINF_XDR_STDLIB", "") not in ("", "0")

_INT_MIN = -(2**31)
_INT_MAX = 2**31 - 1

BufferLike = Union[bytes, bytearray, memoryview]


def using_numpy() -> bool:
    """Whether the bulk paths currently run on the NumPy engine."""
    return HAVE_NUMPY and not FORCE_STDLIB


def swap_needed(byteorder: str = sys.byteorder) -> bool:
    """Whether native element order differs from XDR's big-endian wire
    order.  ``byteorder`` is injectable so tests can walk the
    big-endian branch on little-endian hosts."""
    return byteorder != "big"


def _grow(buf: bytearray, nbytes: int) -> int:
    """Append ``nbytes`` of zeroed room to ``buf``; return its offset."""
    offset = len(buf)
    buf += bytes(nbytes)
    return offset


# -- encode ----------------------------------------------------------------


def pack_doubles_into(buf: bytearray, values: Sequence[float],
                      byteorder: str = sys.byteorder) -> int:
    """Append ``values`` as big-endian IEEE-754 doubles; return nbytes.

    One vectorized pass writes directly into freshly reserved room at
    the end of ``buf`` -- no per-element loop, no intermediate bytes
    object on the NumPy path.
    """
    if using_numpy():
        src = _np.ascontiguousarray(values, dtype=_np.float64)
        if src.ndim != 1:
            raise XdrError("bulk double pack expects a 1-D sequence")
        nbytes = src.size * 8
        offset = _grow(buf, nbytes)
        dest = _np.frombuffer(buf, dtype=">f8", count=src.size,
                              offset=offset)
        dest[:] = src  # fused byteswap-and-copy
        return nbytes
    arr = values if (isinstance(values, array.array)
                     and values.typecode == "d") else array.array(
                         "d", [float(v) for v in values])
    if swap_needed(byteorder):
        arr = array.array("d", arr)  # don't mutate the caller's array
        arr.byteswap()
    nbytes = len(arr) * 8
    offset = _grow(buf, nbytes)
    buf[offset:offset + nbytes] = memoryview(arr).cast("B")
    return nbytes


def pack_ints_into(buf: bytearray, values: Sequence[int],
                   byteorder: str = sys.byteorder) -> int:
    """Append ``values`` as big-endian signed 32-bit ints; return nbytes.

    Raises :class:`~repro.xdr.errors.XdrError` when any element is out
    of 32-bit range (checked in bulk, not per element).
    """
    if using_numpy():
        src = _np.ascontiguousarray(values)
        if src.ndim != 1:
            raise XdrError("bulk int pack expects a 1-D sequence")
        if not _np.issubdtype(src.dtype, _np.integer):
            src = src.astype(_np.int64)
        if src.size and (int(src.min()) < _INT_MIN
                         or int(src.max()) > _INT_MAX):
            raise XdrError("int array element out of 32-bit range")
        nbytes = src.size * 4
        offset = _grow(buf, nbytes)
        dest = _np.frombuffer(buf, dtype=">i4", count=src.size,
                              offset=offset)
        dest[:] = src
        return nbytes
    try:
        arr = array.array("i" if array.array("i").itemsize == 4 else "l",
                          [int(v) for v in values])
    except OverflowError as exc:
        raise XdrError("int array element out of 32-bit range") from exc
    if arr.itemsize != 4:  # pragma: no cover - no 4-byte int type
        raise XdrError("no 4-byte signed int array type on this platform")
    if swap_needed(byteorder):
        arr.byteswap()
    nbytes = len(arr) * 4
    offset = _grow(buf, nbytes)
    buf[offset:offset + nbytes] = memoryview(arr).cast("B")
    return nbytes


# -- decode ----------------------------------------------------------------


def unpack_doubles(payload: BufferLike, count: int,
                   byteorder: str = sys.byteorder):
    """``count`` big-endian doubles from ``payload`` (no copy until the
    final native-order container is built).

    Returns ``np.ndarray[float64]`` on the NumPy engine, else
    ``array.array('d')``.
    """
    view = memoryview(payload)
    if len(view) != count * 8:
        raise XdrError(
            f"bulk double payload is {len(view)} bytes, "
            f"expected {count * 8}")
    if using_numpy():
        return _np.frombuffer(view, dtype=">f8").astype(
            _np.float64, copy=True)
    arr = array.array("d")
    arr.frombytes(view)
    if swap_needed(byteorder):
        arr.byteswap()
    return arr


def unpack_ints(payload: BufferLike, count: int,
                byteorder: str = sys.byteorder):
    """``count`` big-endian signed 32-bit ints from ``payload``.

    Returns ``np.ndarray[int32]`` on the NumPy engine, else a 4-byte
    signed :class:`array.array`.
    """
    view = memoryview(payload)
    if len(view) != count * 4:
        raise XdrError(
            f"bulk int payload is {len(view)} bytes, expected {count * 4}")
    if using_numpy():
        return _np.frombuffer(view, dtype=">i4").astype(
            _np.int32, copy=True)
    typecode = "i" if array.array("i").itemsize == 4 else "l"
    arr = array.array(typecode)
    arr.frombytes(view)
    if swap_needed(byteorder):
        arr.byteswap()
    return arr


# -- scalar-loop reference implementations ---------------------------------
# The pre-bulk encodings, kept as the oracle the property tests and the
# ``ninf-bench marshal`` speedup baseline compare against.  Bit-exact:
# struct '>d' preserves NaN payloads, so bulk-vs-scalar byte equality is
# a meaningful assertion even for NaN/inf arrays.


def scalar_pack_doubles(values: Sequence[float]) -> bytes:
    """Per-element ``struct.pack('>d')`` loop -- the scalar oracle."""
    pack = struct.Struct(">d").pack
    return b"".join(pack(float(v)) for v in values)


def scalar_pack_ints(values: Sequence[int]) -> bytes:
    """Per-element ``struct.pack('>i')`` loop -- the scalar oracle."""
    pack = struct.Struct(">i").pack
    out = []
    for v in values:
        v = int(v)
        if not _INT_MIN <= v <= _INT_MAX:
            raise XdrError(f"int out of range: {v}")
        out.append(pack(v))
    return b"".join(out)


def scalar_unpack_doubles(payload: BufferLike, count: int) -> list[float]:
    """Per-element ``struct.unpack('>d')`` loop -- the scalar oracle."""
    view = memoryview(payload)
    unpack = struct.Struct(">d").unpack_from
    return [unpack(view, i * 8)[0] for i in range(count)]


def scalar_unpack_ints(payload: BufferLike, count: int) -> list[int]:
    """Per-element ``struct.unpack('>i')`` loop -- the scalar oracle."""
    view = memoryview(payload)
    unpack = struct.Struct(">i").unpack_from
    return [unpack(view, i * 4)[0] for i in range(count)]
