"""XDR encoding (RFC 4506 §4).

All quantities are big-endian and padded to 4-byte boundaries.  Scalar
packing uses :mod:`struct`; bulk numeric arrays go through
:mod:`repro.xdr.bulk`, which byteswaps whole arrays in one vectorized
pass (NumPy when available, :mod:`array`-module fallback otherwise)
directly into this encoder's frame buffer.

The encoder owns a single growing ``bytearray``: every ``pack_*`` call
appends in place, :meth:`XdrEncoder.getbuffer` exposes the result as a
zero-copy ``memoryview`` for the framing layer, and
:meth:`XdrEncoder.reserve`/:meth:`XdrEncoder.patch_uint` support
length-prefixed regions whose size is only known after encoding
(:meth:`begin_opaque`/:meth:`end_opaque`) -- the primitive that lets a
CALL or RESULT payload be marshalled into one buffer with no
intermediate concatenation (PROTOCOL.md §"Zero-copy fast paths").
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Sequence

from repro.xdr import bulk
from repro.xdr.errors import XdrError

try:  # optional at the XDR layer; required for ndarray/complex packing
    import numpy as np
except ImportError:  # pragma: no cover - exercised via bulk.FORCE_STDLIB
    np = None

__all__ = ["XdrEncoder"]

_INT_MIN = -(2**31)
_INT_MAX = 2**31 - 1
_UINT_MAX = 2**32 - 1
_HYPER_MIN = -(2**63)
_HYPER_MAX = 2**63 - 1
_UHYPER_MAX = 2**64 - 1

_PACK_INT = struct.Struct(">i")
_PACK_UINT = struct.Struct(">I")

# dtype -> (XDR type code used by the Ninf protocol, big-endian numpy dtype)
if np is not None:
    NUMPY_WIRE_DTYPES = {
        np.dtype(np.int32): ">i4",
        np.dtype(np.uint32): ">u4",
        np.dtype(np.int64): ">i8",
        np.dtype(np.uint64): ">u8",
        np.dtype(np.float32): ">f4",
        np.dtype(np.float64): ">f8",
        np.dtype(np.complex64): ">c8",
        np.dtype(np.complex128): ">c16",
    }
else:  # pragma: no cover - stdlib-only environments
    NUMPY_WIRE_DTYPES = {}


class XdrEncoder:
    """Accumulates XDR-encoded bytes in one preallocated-growth buffer.

    >>> enc = XdrEncoder()
    >>> enc.pack_int(7)
    >>> enc.pack_string("hi")
    >>> enc.getvalue()
    b'\\x00\\x00\\x00\\x07\\x00\\x00\\x00\\x02hi\\x00\\x00'
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    # -- plumbing ------------------------------------------------------------

    def _append(self, data) -> None:
        self._buf += data

    def getvalue(self) -> bytes:
        """The encoded byte string so far (a copy; see getbuffer)."""
        return bytes(self._buf)

    def getbuffer(self) -> memoryview:
        """Zero-copy view of the encoded bytes.

        The view aliases the live buffer: it is invalidated by any
        further ``pack_*`` call (Python raises ``BufferError`` if the
        buffer must grow while a view is exported), so take it last --
        the pattern the framing layer uses is encode-everything, then
        ``channel.send(msg_type, enc.getbuffer())``.
        """
        return memoryview(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def reset(self) -> None:
        """Discard everything encoded so far."""
        self._buf = bytearray()

    def reserve(self, nbytes: int) -> int:
        """Append ``nbytes`` of zeros; return their offset for patching."""
        offset = len(self._buf)
        self._buf += bytes(nbytes)
        return offset

    def patch_uint(self, offset: int, value: int) -> None:
        """Overwrite 4 bytes at ``offset`` with an unsigned int."""
        if not 0 <= value <= _UINT_MAX:
            raise XdrError(f"unsigned int out of range: {value}")
        _PACK_UINT.pack_into(self._buf, offset, value)

    def begin_opaque(self) -> int:
        """Open a variable-length opaque whose size is not yet known.

        Reserves the length word and returns a token for
        :meth:`end_opaque`.  Everything packed in between becomes the
        opaque's body -- this is how a marshalled argument block lands
        inside a CALL payload without an intermediate bytes object.
        """
        return self.reserve(4)

    def end_opaque(self, token: int) -> None:
        """Close a :meth:`begin_opaque` region: patch the length word
        and add XDR padding for the body packed since."""
        body_len = len(self._buf) - token - 4
        if body_len < 0:
            raise XdrError("end_opaque before begin_opaque")
        self.patch_uint(token, body_len)
        pad = (4 - body_len % 4) % 4
        if pad:
            self._buf += b"\x00" * pad

    # -- integral types ---------------------------------------------------------

    def pack_int(self, value: int) -> None:
        """Signed 32-bit integer."""
        if not _INT_MIN <= value <= _INT_MAX:
            raise XdrError(f"int out of range: {value}")
        self._append(_PACK_INT.pack(value))

    def pack_uint(self, value: int) -> None:
        """Unsigned 32-bit integer."""
        if not 0 <= value <= _UINT_MAX:
            raise XdrError(f"unsigned int out of range: {value}")
        self._append(_PACK_UINT.pack(value))

    def pack_hyper(self, value: int) -> None:
        """Signed 64-bit integer."""
        if not _HYPER_MIN <= value <= _HYPER_MAX:
            raise XdrError(f"hyper out of range: {value}")
        self._append(struct.pack(">q", value))

    def pack_uhyper(self, value: int) -> None:
        """Unsigned 64-bit integer."""
        if not 0 <= value <= _UHYPER_MAX:
            raise XdrError(f"unsigned hyper out of range: {value}")
        self._append(struct.pack(">Q", value))

    def pack_bool(self, value: bool) -> None:
        """Boolean as 32-bit 0/1."""
        self._append(_PACK_INT.pack(1 if value else 0))

    def pack_enum(self, value: int) -> None:
        """Enumeration: same wire form as int."""
        self.pack_int(value)

    # -- floating point -----------------------------------------------------------

    def pack_float(self, value: float) -> None:
        """IEEE-754 single precision."""
        self._append(struct.pack(">f", value))

    def pack_double(self, value: float) -> None:
        """IEEE-754 double precision."""
        self._append(struct.pack(">d", value))

    # -- opaque and string -----------------------------------------------------------

    def pack_fopaque(self, n: int, data) -> None:
        """Fixed-length opaque: exactly ``n`` bytes, zero-padded to 4.

        ``data`` may be any bytes-like object (``bytes``, ``bytearray``,
        ``memoryview``); views are copied into the buffer directly, no
        intermediate ``bytes`` is materialised.
        """
        if len(data) != n:
            raise XdrError(f"fixed opaque length mismatch: want {n}, got {len(data)}")
        self._append(data)
        pad = (4 - n % 4) % 4
        if pad:
            self._append(b"\x00" * pad)

    def pack_opaque(self, data) -> None:
        """Variable-length opaque: length word, bytes, zero padding."""
        self.pack_uint(len(data))
        self.pack_fopaque(len(data), data)

    def pack_string(self, text: str) -> None:
        """String: UTF-8 bytes as variable opaque."""
        self.pack_opaque(text.encode("utf-8"))

    # -- arrays -----------------------------------------------------------------

    def pack_farray(self, n: int, items: Sequence, pack_item: Callable) -> None:
        """Fixed-length array: exactly ``n`` elements, no length word."""
        if len(items) != n:
            raise XdrError(f"fixed array length mismatch: want {n}, got {len(items)}")
        for item in items:
            pack_item(item)

    def pack_array(self, items: Iterable, pack_item: Callable) -> None:
        """Variable-length array: length word then elements."""
        items = list(items)
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)

    # -- bulk fast paths ---------------------------------------------------------

    def pack_ndarray(self, array) -> None:
        """A NumPy array as: rank, dims, dtype code, then raw big-endian data.

        This is the Ninf matrix wire format: shape-prefixed so the
        receiver can allocate before reading, and the payload is one
        contiguous big-endian block written straight into the frame
        buffer (a single fused byteswap-and-copy), so marshalling
        throughput is memory-bandwidth bound.  Requires NumPy; the
        stdlib fallback covers only the 1-D bulk paths
        (:meth:`pack_double_array` / :meth:`pack_int_array`).
        """
        if np is None:  # pragma: no cover - stdlib-only environments
            raise XdrError("ndarray packing requires numpy "
                           "(stdlib fallback covers 1-D bulk arrays only)")
        arr = np.ascontiguousarray(array)
        wire = NUMPY_WIRE_DTYPES.get(arr.dtype)
        if wire is None:
            raise XdrError(f"unsupported ndarray dtype {arr.dtype}")
        self.pack_uint(arr.ndim)
        for dim in arr.shape:
            self.pack_uint(dim)
        self.pack_string(wire)
        nbytes = arr.size * arr.itemsize
        self.pack_uint(nbytes)
        offset = self.reserve(nbytes)
        dest = np.frombuffer(self._buf, dtype=wire, count=arr.size,
                             offset=offset)
        dest[:] = arr.reshape(-1)  # one pass: byteswap + copy, no temp
        pad = (4 - nbytes % 4) % 4
        if pad:
            self._append(b"\x00" * pad)

    def pack_double_array(self, values: Sequence[float]) -> None:
        """Variable array of doubles via the bulk vectorized path."""
        if np is not None and not bulk.FORCE_STDLIB:
            arr = np.asarray(values, dtype=np.float64)
            if arr.ndim != 1:
                raise XdrError("pack_double_array expects a 1-D sequence")
            self.pack_uint(arr.size)
        else:
            values = (values if isinstance(values, (list, tuple))
                      or hasattr(values, "__len__") else list(values))
            self.pack_uint(len(values))
            arr = values
        bulk.pack_doubles_into(self._buf, arr)

    def pack_int_array(self, values: Sequence[int]) -> None:
        """Variable array of 32-bit ints via the bulk vectorized path."""
        if np is not None and not bulk.FORCE_STDLIB:
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise XdrError("pack_int_array expects a 1-D sequence")
            self.pack_uint(arr.size)
        else:
            values = (values if hasattr(values, "__len__")
                      else list(values))
            self.pack_uint(len(values))
            arr = values
        bulk.pack_ints_into(self._buf, arr)
