"""XDR encoding (RFC 4506 §4).

All quantities are big-endian and padded to 4-byte boundaries.  Scalar
packing uses :mod:`struct`; bulk numeric arrays use NumPy's dtype
byte-order conversion, which compiles to a single vectorized pass.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.xdr.errors import XdrError

__all__ = ["XdrEncoder"]

_INT_MIN = -(2**31)
_INT_MAX = 2**31 - 1
_UINT_MAX = 2**32 - 1
_HYPER_MIN = -(2**63)
_HYPER_MAX = 2**63 - 1
_UHYPER_MAX = 2**64 - 1

# dtype -> (XDR type code used by the Ninf protocol, big-endian numpy dtype)
NUMPY_WIRE_DTYPES = {
    np.dtype(np.int32): ">i4",
    np.dtype(np.uint32): ">u4",
    np.dtype(np.int64): ">i8",
    np.dtype(np.uint64): ">u8",
    np.dtype(np.float32): ">f4",
    np.dtype(np.float64): ">f8",
    np.dtype(np.complex64): ">c8",
    np.dtype(np.complex128): ">c16",
}


class XdrEncoder:
    """Accumulates XDR-encoded bytes.

    >>> enc = XdrEncoder()
    >>> enc.pack_int(7)
    >>> enc.pack_string("hi")
    >>> enc.getvalue()
    b'\\x00\\x00\\x00\\x07\\x00\\x00\\x00\\x02hi\\x00\\x00'
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._size = 0

    # -- plumbing ------------------------------------------------------------

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)

    def getvalue(self) -> bytes:
        """The encoded byte string so far."""
        if len(self._chunks) > 1:
            merged = b"".join(self._chunks)
            self._chunks = [merged]
        return self._chunks[0] if self._chunks else b""

    def __len__(self) -> int:
        return self._size

    def reset(self) -> None:
        """Discard everything encoded so far."""
        self._chunks = []
        self._size = 0

    # -- integral types ---------------------------------------------------------

    def pack_int(self, value: int) -> None:
        """Signed 32-bit integer."""
        if not _INT_MIN <= value <= _INT_MAX:
            raise XdrError(f"int out of range: {value}")
        self._append(struct.pack(">i", value))

    def pack_uint(self, value: int) -> None:
        """Unsigned 32-bit integer."""
        if not 0 <= value <= _UINT_MAX:
            raise XdrError(f"unsigned int out of range: {value}")
        self._append(struct.pack(">I", value))

    def pack_hyper(self, value: int) -> None:
        """Signed 64-bit integer."""
        if not _HYPER_MIN <= value <= _HYPER_MAX:
            raise XdrError(f"hyper out of range: {value}")
        self._append(struct.pack(">q", value))

    def pack_uhyper(self, value: int) -> None:
        """Unsigned 64-bit integer."""
        if not 0 <= value <= _UHYPER_MAX:
            raise XdrError(f"unsigned hyper out of range: {value}")
        self._append(struct.pack(">Q", value))

    def pack_bool(self, value: bool) -> None:
        """Boolean as 32-bit 0/1."""
        self._append(struct.pack(">i", 1 if value else 0))

    def pack_enum(self, value: int) -> None:
        """Enumeration: same wire form as int."""
        self.pack_int(value)

    # -- floating point -----------------------------------------------------------

    def pack_float(self, value: float) -> None:
        """IEEE-754 single precision."""
        self._append(struct.pack(">f", value))

    def pack_double(self, value: float) -> None:
        """IEEE-754 double precision."""
        self._append(struct.pack(">d", value))

    # -- opaque and string -----------------------------------------------------------

    def pack_fopaque(self, n: int, data: bytes) -> None:
        """Fixed-length opaque: exactly ``n`` bytes, zero-padded to 4."""
        if len(data) != n:
            raise XdrError(f"fixed opaque length mismatch: want {n}, got {len(data)}")
        self._append(data)
        pad = (4 - n % 4) % 4
        if pad:
            self._append(b"\x00" * pad)

    def pack_opaque(self, data: bytes) -> None:
        """Variable-length opaque: length word, bytes, zero padding."""
        self.pack_uint(len(data))
        self.pack_fopaque(len(data), data)

    def pack_string(self, text: str) -> None:
        """String: UTF-8 bytes as variable opaque."""
        self.pack_opaque(text.encode("utf-8"))

    # -- arrays -----------------------------------------------------------------

    def pack_farray(self, n: int, items: Sequence, pack_item: Callable) -> None:
        """Fixed-length array: exactly ``n`` elements, no length word."""
        if len(items) != n:
            raise XdrError(f"fixed array length mismatch: want {n}, got {len(items)}")
        for item in items:
            pack_item(item)

    def pack_array(self, items: Iterable, pack_item: Callable) -> None:
        """Variable-length array: length word then elements."""
        items = list(items)
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)

    # -- NumPy fast paths --------------------------------------------------------

    def pack_ndarray(self, array: np.ndarray) -> None:
        """A NumPy array as: rank, dims, dtype code, then raw big-endian data.

        This is the Ninf matrix wire format: shape-prefixed so the
        receiver can allocate before reading, and the payload is one
        contiguous big-endian block (a single vectorized byteswap), so
        marshalling throughput is memory-bandwidth bound.
        """
        arr = np.ascontiguousarray(array)
        wire = NUMPY_WIRE_DTYPES.get(arr.dtype)
        if wire is None:
            raise XdrError(f"unsupported ndarray dtype {arr.dtype}")
        self.pack_uint(arr.ndim)
        for dim in arr.shape:
            self.pack_uint(dim)
        self.pack_string(wire)
        payload = arr.astype(wire, copy=False).tobytes()
        self.pack_uint(len(payload))
        self._append(payload)
        pad = (4 - len(payload) % 4) % 4
        if pad:
            self._append(b"\x00" * pad)

    def pack_double_array(self, values: Sequence[float]) -> None:
        """Variable array of doubles via the vectorized path."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise XdrError("pack_double_array expects a 1-D sequence")
        self.pack_uint(arr.size)
        self._append(arr.astype(">f8", copy=False).tobytes())

    def pack_int_array(self, values: Sequence[int]) -> None:
        """Variable array of 32-bit ints via the vectorized path."""
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise XdrError("pack_int_array expects a 1-D sequence")
        if arr.size and (arr.min() < _INT_MIN or arr.max() > _INT_MAX):
            raise XdrError("int array element out of 32-bit range")
        self.pack_uint(arr.size)
        self._append(arr.astype(">i4").tobytes())
