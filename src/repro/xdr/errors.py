"""XDR error types."""


class XdrError(ValueError):
    """Raised on malformed, truncated, or out-of-range XDR data."""
