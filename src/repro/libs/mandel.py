"""Mandelbrot tile rendering: the paper's "parallel rendering/imaging"
application class.

§4.3.1: "for this class of applications such as parallel
rendering/imaging, and parameter sensitivity analysis, global computing
can now be considered quite feasible" -- EP-like workloads: heavy
computation, small inputs, per-tile outputs, embarrassingly parallel
across tiles.

:func:`mandel_tile` renders one tile of the escape-time fractal
(vectorized over the whole tile); tiles compose exactly, so a
metaserver can fan an image out across servers like Fig 11 fans EP.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mandel_tile", "mandel_image", "tile_grid"]


def mandel_tile(x_min: float, x_max: float, y_min: float, y_max: float,
                width: int, height: int, max_iter: int = 256) -> np.ndarray:
    """Escape-time iteration counts for one tile (height x width).

    Pixels sample the *centres* of a half-open [min, max) grid, so
    adjacent tiles compose seamlessly into exactly the image a single
    whole-domain render would produce (required for remote tile
    fan-out).  Vectorized: all pixels iterate together with an active
    mask, so the inner loop is ``max_iter`` NumPy passes.
    """
    if width < 1 or height < 1:
        raise ValueError(f"tile must be at least 1x1, got {width}x{height}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    if not (x_min < x_max and y_min < y_max):
        raise ValueError("tile bounds must satisfy min < max")
    xs = x_min + (np.arange(width) + 0.5) * (x_max - x_min) / width
    ys = y_min + (np.arange(height) + 0.5) * (y_max - y_min) / height
    c = xs[None, :] + 1j * ys[:, None]
    z = np.zeros_like(c)
    counts = np.full(c.shape, max_iter, dtype=np.int32)
    active = np.ones(c.shape, dtype=bool)
    for iteration in range(max_iter):
        z[active] = z[active] * z[active] + c[active]
        escaped = active & (np.abs(z) > 2.0)
        counts[escaped] = iteration
        active &= ~escaped
        if not active.any():
            break
    return counts


def tile_grid(width: int, height: int, tiles_x: int, tiles_y: int,
              x_min: float = -2.25, x_max: float = 0.75,
              y_min: float = -1.5, y_max: float = 1.5) -> list[dict]:
    """Partition an image into tile descriptors for remote rendering.

    Each descriptor carries everything a ``Ninf_call`` needs; pixel rows
    and columns partition exactly (no seams, no overlap).
    """
    if tiles_x < 1 or tiles_y < 1:
        raise ValueError("need at least one tile in each dimension")
    if width % tiles_x or height % tiles_y:
        raise ValueError(
            f"{width}x{height} image does not divide into "
            f"{tiles_x}x{tiles_y} tiles"
        )
    tile_w = width // tiles_x
    tile_h = height // tiles_y
    dx = (x_max - x_min) / tiles_x
    dy = (y_max - y_min) / tiles_y
    tiles = []
    for ty in range(tiles_y):
        for tx in range(tiles_x):
            tiles.append({
                "x_min": x_min + tx * dx,
                "x_max": x_min + (tx + 1) * dx,
                "y_min": y_min + ty * dy,
                "y_max": y_min + (ty + 1) * dy,
                "width": tile_w,
                "height": tile_h,
                "col": tx * tile_w,
                "row": ty * tile_h,
            })
    return tiles


def mandel_image(width: int = 192, height: int = 128, tiles_x: int = 4,
                 tiles_y: int = 4, max_iter: int = 128) -> np.ndarray:
    """Render a whole image by composing tiles (reference for tests)."""
    image = np.zeros((height, width), dtype=np.int32)
    for tile in tile_grid(width, height, tiles_x, tiles_y):
        counts = mandel_tile(
            tile["x_min"], tile["x_max"], tile["y_min"], tile["y_max"],
            tile["width"], tile["height"], max_iter=max_iter,
        )
        image[tile["row"]:tile["row"] + tile["height"],
              tile["col"]:tile["col"] + tile["width"]] = counts
    return image
