"""Numerical libraries registered on Ninf computational servers.

These are the actual payloads the paper benchmarks:

- :mod:`repro.libs.linpack` -- the Linpack benchmark kernels: ``dgefa``
  (LU factorization with partial pivoting), ``dgesl`` (triangular
  solves), a blocked right-looking LU (the "glub4"-style optimized
  routine), ``dmmul`` (the paper's running dmmul example), matrix
  generation and residual checks.
- :mod:`repro.libs.ep` -- the NAS Parallel Benchmarks EP kernel with the
  authentic NPB linear-congruential generator (vectorized), Gaussian
  pair generation and annulus counts.
- :mod:`repro.libs.dos` -- a density-of-states Monte-Carlo calculation,
  the "EP-style practical application in computational chemistry" of
  §4.3.1.
- :mod:`repro.libs.mandel` -- tile-based Mandelbrot rendering, the
  "parallel rendering/imaging" application class §4.3.1 names.
"""

from repro.libs.linpack import (
    dgefa,
    dgesl,
    dgetrf_blocked,
    dmmul,
    linpack_flops,
    linpack_matgen,
    linpack_residual,
    linpack_solve,
)
from repro.libs.ep import ep_kernel, EPResult, NPBRandom
from repro.libs.dos import dos_kernel, DOSResult
from repro.libs.mandel import mandel_image, mandel_tile, tile_grid

__all__ = [
    "DOSResult",
    "EPResult",
    "NPBRandom",
    "dgefa",
    "dgesl",
    "dgetrf_blocked",
    "dmmul",
    "dos_kernel",
    "ep_kernel",
    "linpack_flops",
    "linpack_matgen",
    "linpack_residual",
    "linpack_solve",
    "mandel_image",
    "mandel_tile",
    "tile_grid",
]
