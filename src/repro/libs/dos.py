"""Density-of-states (DOS) Monte-Carlo calculation.

The paper (§4.3.1): "We also conducted benchmarks with DOS
(Density-Of-States) calculation, which is an EP-style practical
application in computational chemistry, and came up with similar
results."

This module implements a concrete such application: the density of
states of a disordered tight-binding chain (Anderson model).  Each
trial draws a random realization of site energies, diagonalizes the
tridiagonal Hamiltonian, and histograms the eigenvalues; trials are
independent, so the workload is embarrassingly parallel exactly like
EP, and results are addable across Ninf servers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DOSResult", "dos_kernel"]


@dataclass(frozen=True)
class DOSResult:
    """Accumulated histogram of eigenvalues; addable across servers."""

    trials: int
    sites: int
    histogram: tuple[int, ...]
    e_min: float
    e_max: float

    def __add__(self, other: "DOSResult") -> "DOSResult":
        if not isinstance(other, DOSResult):
            return NotImplemented
        if (self.sites, self.e_min, self.e_max, len(self.histogram)) != (
            other.sites, other.e_min, other.e_max, len(other.histogram)
        ):
            raise ValueError("cannot combine DOS results with different grids")
        return DOSResult(
            trials=self.trials + other.trials,
            sites=self.sites,
            histogram=tuple(a + b for a, b in zip(self.histogram,
                                                  other.histogram)),
            e_min=self.e_min,
            e_max=self.e_max,
        )

    def density(self) -> np.ndarray:
        """Normalized density of states (integrates to 1 over the grid)."""
        hist = np.asarray(self.histogram, dtype=np.float64)
        total = hist.sum()
        if total == 0:
            return hist
        width = (self.e_max - self.e_min) / len(self.histogram)
        return hist / (total * width)


def dos_kernel(trials: int, sites: int = 32, disorder: float = 1.0,
               bins: int = 64, hopping: float = 1.0,
               seed: int = 12345, skip: int = 0) -> DOSResult:
    """Monte-Carlo DOS of a disordered tight-binding chain.

    Hamiltonian: ``H_ii = eps_i`` uniform in ``[-W/2, W/2]``,
    ``H_{i,i+1} = H_{i+1,i} = -t``.  Eigenvalues are histogrammed on
    ``[-2t - W/2, 2t + W/2]``.

    ``trials`` controls cost linearly (EP-style); ``seed`` makes results
    reproducible and slice-able: trial ``k`` always uses substream ``k``,
    so splitting trials across servers reproduces the single-server
    result exactly.
    """
    if trials < 0 or skip < 0:
        raise ValueError(f"trials/skip must be >= 0, got {trials}/{skip}")
    if sites < 2:
        raise ValueError(f"sites must be >= 2, got {sites}")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    e_max = 2.0 * abs(hopping) + disorder / 2.0
    e_min = -e_max
    histogram = np.zeros(bins, dtype=np.int64)
    off_diagonal = np.full(sites - 1, -hopping)
    # Trial k always draws from substream (seed, k), so splitting the
    # trial range across Ninf servers reproduces a single-server run.
    for trial in range(skip, skip + trials):
        rng = np.random.default_rng([seed, trial])
        energies = rng.uniform(-disorder / 2.0, disorder / 2.0, size=sites)
        eigenvalues = np.linalg.eigvalsh(
            np.diag(energies)
            + np.diag(off_diagonal, 1)
            + np.diag(off_diagonal, -1)
        )
        hist, _ = np.histogram(eigenvalues, bins=bins, range=(e_min, e_max))
        histogram += hist
    return DOSResult(trials=trials, sites=sites,
                     histogram=tuple(int(h) for h in histogram),
                     e_min=e_min, e_max=e_max)
