"""NAS Parallel Benchmarks EP kernel (embarrassingly parallel).

The paper (§4.3): "EP ... is one of the kernel programs in the NAS
Parallel Benchmark, performing (random-number) Monte-Carlo simulations
... Computational complexity is proportional to the number of random
numbers generated, and becomes 2^(n+1) for 2^n trials."

This is a faithful, vectorized implementation:

- :class:`NPBRandom` -- the NPB ``randlc`` linear congruential generator
  ``x_{k+1} = a x_k mod 2^46`` with ``a = 5^13``, implemented with the
  standard exact 23-bit-split double arithmetic so results are
  bit-identical to the reference Fortran, including O(1) sequence
  jumping (needed both for vectorization and for splitting one EP
  problem across Ninf servers exactly as the metaserver does in Fig 11).
- :func:`ep_kernel` -- generate ``2^m`` uniform pairs, apply the
  Marsaglia polar method acceptance test, and accumulate the Gaussian
  sums ``sx``, ``sy`` and the ten square-annulus counts that NPB
  verifies against.

Vectorization runs ``K`` generator streams in lockstep (each stream is
a jump-ahead segment of the single reference sequence), so the combined
output is exactly the reference sequence in order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EPResult", "NPBRandom", "ep_kernel", "ep_operations"]

# NPB constants.
A = 1220703125  # 5^13
DEFAULT_SEED = 271828183
MOD46 = 2**46
R23 = 2.0**-23
T23 = 2.0**23
R46 = 2.0**-46


class NPBRandom:
    """Scalar NPB ``randlc`` generator with exact jump-ahead."""

    def __init__(self, seed: int = DEFAULT_SEED):
        if not 0 < seed < MOD46:
            raise ValueError(f"seed must be in (0, 2^46), got {seed}")
        self.state = seed

    def randlc(self) -> float:
        """Next uniform deviate in (0, 1)."""
        self.state = (A * self.state) % MOD46
        return self.state * R46

    def jump(self, count: int) -> None:
        """Advance the sequence by ``count`` steps in O(log count)."""
        if count < 0:
            raise ValueError(f"cannot jump backwards ({count})")
        self.state = (self.state * pow(A, count, MOD46)) % MOD46

    def uniforms(self, count: int) -> np.ndarray:
        """The next ``count`` deviates (vectorized, state advanced)."""
        if count == 0:
            return np.empty(0)
        streams = min(4096, count)
        out = _vector_randlc(self.state, count, streams)
        self.jump(count)
        return out


def _split23(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    hi = np.floor(x * R23)
    return hi, x - hi * T23


def _vector_randlc(seed: int, count: int, streams: int) -> np.ndarray:
    """``count`` sequential deviates of the reference stream, vectorized.

    Stream ``i`` is the reference sequence jumped ahead by ``i * L``
    where ``L = ceil(count / streams)``; concatenating the streams'
    outputs therefore reproduces the scalar sequence exactly.
    """
    per_stream = -(-count // streams)  # ceil
    # Exact jump-ahead seeds via Python big-int pow.
    seeds = np.array(
        [(seed * pow(A, i * per_stream, MOD46)) % MOD46 for i in range(streams)],
        dtype=np.float64,
    )
    a_hi, a_lo = _split23(np.float64(A))
    out = np.empty((streams, per_stream), dtype=np.float64)
    x = seeds
    for t in range(per_stream):
        # Exact a*x mod 2^46 in doubles (all intermediates < 2^47 <= 2^53).
        x_hi, x_lo = _split23(x)
        t1 = a_hi * x_lo + a_lo * x_hi
        t2 = t1 - np.floor(t1 * R23) * T23  # t1 mod 2^23
        t3 = t2 * T23 + a_lo * x_lo
        x = t3 - np.floor(t3 * R46) * T23 * T23  # t3 mod 2^46
        out[:, t] = x
    return out.reshape(-1)[:count] * R46


@dataclass(frozen=True)
class EPResult:
    """Accumulated EP results; addable so servers can partition trials."""

    pairs: int
    accepted: int
    sx: float
    sy: float
    counts: tuple[int, ...]  # ten square-annulus bins

    def __add__(self, other: "EPResult") -> "EPResult":
        if not isinstance(other, EPResult):
            return NotImplemented
        return EPResult(
            pairs=self.pairs + other.pairs,
            accepted=self.accepted + other.accepted,
            sx=self.sx + other.sx,
            sy=self.sy + other.sy,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
        )

    @property
    def flops_proxy(self) -> int:
        """NPB's nominal operation count 2^(m+1) expressed from pairs."""
        return 2 * self.pairs


def ep_kernel(m: int, seed: int = DEFAULT_SEED, skip_pairs: int = 0,
              pairs: int | None = None, batch: int = 1 << 20) -> EPResult:
    """Run EP for ``pairs`` (default all ``2^m``) pairs of deviates.

    ``skip_pairs``/``pairs`` select a slice of the full problem, so a
    metaserver can split one EP class across ``p`` servers and the
    concatenation is *exactly* the reference sequence (this is how the
    Fig 11 experiment parallelizes: ``Ninf_call("ep", ...)`` per node
    inside a transaction).
    """
    if m < 1 or m > 40:
        raise ValueError(f"m must be in [1, 40], got {m}")
    total_pairs = 2**m
    if pairs is None:
        pairs = total_pairs - skip_pairs
    if skip_pairs < 0 or pairs < 0 or skip_pairs + pairs > total_pairs:
        raise ValueError(
            f"invalid slice skip={skip_pairs} pairs={pairs} of 2^{m} total"
        )
    rng = NPBRandom(seed)
    rng.jump(2 * skip_pairs)

    sx = 0.0
    sy = 0.0
    accepted = 0
    counts = np.zeros(10, dtype=np.int64)
    remaining = pairs
    while remaining:
        take = min(batch, remaining)
        u = rng.uniforms(2 * take)
        x = 2.0 * u[0::2] - 1.0
        y = 2.0 * u[1::2] - 1.0
        t = x * x + y * y
        ok = t <= 1.0
        tt = t[ok]
        factor = np.sqrt(-2.0 * np.log(tt) / tt)
        gx = x[ok] * factor
        gy = y[ok] * factor
        sx += float(gx.sum())
        sy += float(gy.sum())
        accepted += int(ok.sum())
        bins = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        counts += np.bincount(bins, minlength=10)[:10]
        remaining -= take
    return EPResult(pairs=pairs, accepted=accepted, sx=sx, sy=sy,
                    counts=tuple(int(c) for c in counts))


def ep_operations(m: int) -> float:
    """The paper's EP performance numerator: ``2^(m+1)`` operations."""
    return float(2 ** (m + 1))
