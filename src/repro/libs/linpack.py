"""Linpack kernels: LU factorization and triangular solves, from scratch.

The paper registers ``sgetrf/sgetrs`` (libSci, Cray J90) and
``glub4/gslv4`` (blocked, for RISC workstations) as the remote Linpack
routine, executing "the LU-decomposition (dgefa) and backward
substitution (dgesl) remotely".  This module provides:

- :func:`dgefa` / :func:`dgesl` -- the classic LINPACK pair: right-looking
  unblocked LU with partial pivoting, and the corresponding solver.
  Inner loops are vectorized (rank-1 updates), the outer elimination
  loop mirrors the reference algorithm.
- :func:`dgetrf_blocked` -- a blocked right-looking LU (the "blocking
  optimizations" of glub4): panel factorization + triangular solve +
  matrix-matrix update, which is the cache-friendly variant.
- :func:`linpack_solve` -- factor + solve in one call; the routine the
  Ninf server registers.
- :func:`dmmul` -- double-precision matrix multiply, the paper's running
  API example.
- :func:`linpack_matgen`, :func:`linpack_residual`,
  :func:`linpack_flops` -- the benchmark harness pieces: reproducible
  matrix generation, the standard ``||Ax-b|| / (n ||A|| ||x|| eps)``
  residual check, and the official ``2/3 n^3 + 2 n^2`` flop count used
  for all Mflops numbers in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "SingularMatrixError",
    "dgefa",
    "dgesl",
    "dgetrf_blocked",
    "dmmul",
    "linpack_flops",
    "linpack_matgen",
    "linpack_residual",
    "linpack_solve",
]


class SingularMatrixError(ArithmeticError):
    """Raised when elimination hits an (exactly) zero pivot."""

    def __init__(self, column: int):
        super().__init__(f"zero pivot at column {column}")
        self.column = column


def dgefa(a: np.ndarray) -> np.ndarray:
    """LU factorization with partial pivoting, in place.

    ``a`` is overwritten with L (unit diagonal, below) and U (on and
    above the diagonal).  Returns the pivot index vector ``ipvt`` where
    ``ipvt[k]`` is the row swapped into position ``k`` at step ``k``
    (LINPACK convention).

    Raises :class:`SingularMatrixError` on an exactly zero pivot.
    """
    a = _require_square(a)
    n = a.shape[0]
    ipvt = np.empty(n, dtype=np.int64)
    for k in range(n - 1):
        # Partial pivoting: largest magnitude in column k at/below diagonal.
        pivot = k + int(np.argmax(np.abs(a[k:, k])))
        ipvt[k] = pivot
        if a[pivot, k] == 0.0:
            raise SingularMatrixError(k)
        if pivot != k:
            a[[k, pivot], k:] = a[[pivot, k], k:]
        # Multipliers, then the rank-1 trailing update (vectorized).
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    ipvt[n - 1] = n - 1
    if a[n - 1, n - 1] == 0.0:
        raise SingularMatrixError(n - 1)
    return ipvt


def dgesl(a: np.ndarray, ipvt: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the :func:`dgefa` factorization, in place.

    ``b`` is overwritten with the solution and returned.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    n = a.shape[0]
    if b.shape[0] != n:
        raise ValueError(f"rhs length {b.shape[0]} != matrix order {n}")
    # Forward: apply the recorded row interchanges, then L^-1.
    for k in range(n - 1):
        pivot = int(ipvt[k])
        if pivot != k:
            b[[k, pivot]] = b[[pivot, k]]
        b[k + 1 :] -= a[k + 1 :, k] * b[k]
    # Backward: U^-1.
    for k in range(n - 1, -1, -1):
        b[k] /= a[k, k]
        if k:
            b[:k] -= a[:k, k] * b[k]
    return b


def dgetrf_blocked(a: np.ndarray, block: int = 64) -> np.ndarray:
    """Blocked right-looking LU with partial pivoting, in place.

    The cache-blocked variant the paper calls "blocking optimizations"
    (glub4): factor an ``n x nb`` panel with the unblocked kernel, apply
    its interchanges across the block row, triangular-solve the block
    row, then one matrix-matrix update of the trailing submatrix.
    Returns pivots in LAPACK convention (absolute row swapped with row
    ``k``).
    """
    a = _require_square(a)
    if block < 1:
        raise ValueError(f"block size must be >= 1, got {block}")
    n = a.shape[0]
    ipvt = np.arange(n, dtype=np.int64)
    for j in range(0, n, block):
        jb = min(block, n - j)
        # Factor the panel a[j:, j:j+jb] (unblocked, with pivoting).
        panel = a[j:, j : j + jb]
        for k in range(jb):
            col = j + k
            pivot = k + int(np.argmax(np.abs(panel[k:, k])))
            if panel[pivot, k] == 0.0:
                raise SingularMatrixError(col)
            if pivot != k:
                # Swap full rows of A so the update sees consistent data.
                a[[j + k, j + pivot], :] = a[[j + pivot, j + k], :]
            ipvt[col] = j + pivot
            panel[k + 1 :, k] /= panel[k, k]
            if k + 1 < jb:
                panel[k + 1 :, k + 1 : jb] -= np.outer(
                    panel[k + 1 :, k], panel[k, k + 1 : jb]
                )
        if j + jb < n:
            # Block row: solve L11 * U12 = A12 (unit lower triangular).
            l11 = a[j : j + jb, j : j + jb]
            u12 = a[j : j + jb, j + jb :]
            for k in range(1, jb):
                u12[k, :] -= l11[k, :k] @ u12[:k, :]
            # Trailing update: A22 -= L21 @ U12 (the GEMM that makes
            # blocking fast).
            a[j + jb :, j + jb :] -= a[j + jb :, j : j + jb] @ u12
    return ipvt


def _solve_from_lapack_pivots(a: np.ndarray, ipvt: np.ndarray,
                              b: np.ndarray) -> np.ndarray:
    """Solve using LAPACK-convention pivots (absolute swap targets)."""
    b = np.asarray(b, dtype=np.float64).copy()
    n = a.shape[0]
    for k in range(n):
        pivot = int(ipvt[k])
        if pivot != k:
            b[[k, pivot]] = b[[pivot, k]]
    for k in range(n - 1):
        b[k + 1 :] -= a[k + 1 :, k] * b[k]
    for k in range(n - 1, -1, -1):
        b[k] /= a[k, k]
        if k:
            b[:k] -= a[:k, k] * b[k]
    return b


def linpack_solve(a: np.ndarray, b: np.ndarray,
                  blocked: bool = True, block: int = 64) -> np.ndarray:
    """Factor ``a`` and solve for ``b`` in place (the registered routine).

    Returns the solution vector (aliasing ``b`` when possible).  This is
    the "sgetrf and sgetrs" pair the paper registers on the J90 server.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if blocked:
        ipvt = dgetrf_blocked(a, block=block)
        x = _solve_from_lapack_pivots(a, ipvt, b)
        b[...] = x
        return b
    ipvt = dgefa(a)
    return dgesl(a, ipvt, b)


def dmmul(n: int, a: np.ndarray, b: np.ndarray,
          c: Optional[np.ndarray] = None) -> np.ndarray:
    """Double-precision matrix multiply ``C = A @ B`` (the paper's example).

    Mirrors the C calling convention ``dmmul(n, A, B, C)``: ``c`` may be
    a preallocated output buffer, otherwise one is allocated.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError(f"dmmul expects two {n}x{n} matrices, got "
                         f"{a.shape} and {b.shape}")
    if c is None:
        c = np.empty((n, n), dtype=np.float64)
    elif c.shape != (n, n):
        raise ValueError(f"output buffer must be {n}x{n}, got {c.shape}")
    np.matmul(a, b, out=c)
    return c


def linpack_flops(n: int) -> float:
    """The official Linpack operation count: ``2/3 n^3 + 2 n^2``.

    All Mflops figures in the paper divide this by the wall time.
    """
    return (2.0 / 3.0) * n**3 + 2.0 * n**2


def linpack_bytes(n: int) -> float:
    """The paper's transfer size for a remote Linpack call: ``8n^2+20n``."""
    return 8.0 * n * n + 20.0 * n


def linpack_matgen(n: int, seed: int = 1325) -> tuple[np.ndarray, np.ndarray]:
    """Generate the standard Linpack test problem.

    Like the classic ``matgen``: uniform entries in (-0.5, 0.5) and
    ``b = A @ ones`` so the exact solution is all ones.  The classic C
    driver's ``s = s*3125 % 65536`` recurrence has period 16384, which
    makes the matrix *exactly singular* for n >= 512 (duplicate rows),
    so we draw the same distribution from a full-period generator
    instead; results remain reproducible per (n, seed).
    """
    if n < 1:
        raise ValueError(f"matrix order must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    a = rng.uniform(-0.5, 0.5, size=(n, n))
    b = a.sum(axis=1)  # b = A @ ones
    return a, b


def linpack_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """The standard normalized residual ``||Ax-b||_inf / (n ||A|| ||x|| eps)``.

    Values of O(1-10) indicate a correct solve.
    """
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    residual = np.abs(a @ x - b).max()
    norm_a = np.abs(a).max()
    norm_x = np.abs(x).max()
    eps = np.finfo(np.float64).eps
    denom = n * norm_a * norm_x * eps
    if denom == 0.0:
        return 0.0 if residual == 0.0 else np.inf
    return float(residual / denom)


def _require_square(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    if a.dtype != np.float64:
        raise ValueError(f"expected float64 (in-place factorization), got {a.dtype}")
    return a
