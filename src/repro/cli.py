"""Command-line entry points.

``ninf-server``      -- run a computational server with the standard
                        numerical library (dmmul, linpack, ep, dos, mandel).
``ninf-metaserver``  -- run a metaserver.
``ninf-experiment``  -- run paper experiments / generate EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

__all__ = ["EXPERIMENT_TARGETS", "experiment_main", "metaserver_main",
           "server_main", "standard_registry"]

# Every ninf-experiment subcommand.  The docs-consistency check
# (tests/test_docs_consistency.py) asserts each one is documented in
# README.md or OBSERVABILITY.md -- add the docs when you add a target.
EXPERIMENT_TARGETS = (
    "report", "fig3", "fig4", "fig5", "fig7", "fig10", "fig11",
    "table3", "table4", "table5", "table6", "table7", "table8",
    "availability", "breakdown", "overload", "partition",
)


def standard_registry():
    """The stock numerical library every CLI server registers."""
    from repro.libs.dos import dos_kernel
    from repro.libs.ep import ep_kernel
    from repro.libs.linpack import dmmul, linpack_solve
    from repro.server import Registry

    registry = Registry()
    registry.register(
        "Define dmmul(mode_in int n, mode_in double A[n][n], "
        "mode_in double B[n][n], mode_out double C[n][n]) "
        '"double precision matrix multiply" CalcOrder "2*n*n*n" '
        'Calls "C" mmul(n, A, B, C);',
        lambda n, a, b, c: dmmul(int(n), a, b, c),
    )

    def linpack_exec(n, a, b):
        linpack_solve(a, b)

    registry.register(
        "Define linpack(mode_in int n, mode_inout double A[n][n], "
        'mode_inout double b[n]) "LU factorize + solve" '
        'CalcOrder "2*n*n*n/3 + 2*n*n" CommOrder "8*n*n + 20*n" '
        'Calls "C" linpack_solve(n, A, b);',
        linpack_exec,
    )

    def ep_exec(m, skip, pairs, accepted, sx, sy):
        result = ep_kernel(int(m), skip_pairs=int(skip), pairs=int(pairs))
        return result.accepted, result.sx, result.sy

    registry.register(
        "Define ep(mode_in int m, mode_in long skip, mode_in long pairs, "
        "mode_out long accepted, mode_out double sx, mode_out double sy) "
        '"NAS EP slice" CalcOrder "2^(m+1)" Calls "C" ep(m, skip, pairs, '
        "accepted, sx, sy);",
        ep_exec,
    )

    def dos_exec(trials, skip, sites, bins, total, hist):
        result = dos_kernel(trials=int(trials), skip=int(skip),
                            sites=int(sites), bins=int(bins))
        hist[:] = result.histogram
        return sum(result.histogram), hist

    registry.register(
        "Define dos(mode_in int trials, mode_in int skip, "
        "mode_in int sites, mode_in int bins, mode_out long total, "
        'mode_out double hist[bins]) "Monte-Carlo density of states" '
        'CalcOrder "trials * sites * sites * sites" '
        'Calls "C" dos(trials, skip, sites, bins, total, hist);',
        dos_exec,
    )

    from repro.libs.mandel import mandel_tile

    def mandel_exec(x0, x1, y0, y1, w, h, iters, counts):
        counts[:] = mandel_tile(x0, x1, y0, y1, int(w), int(h),
                                max_iter=int(iters))

    registry.register(
        "Define mandel(mode_in double x0, mode_in double x1, "
        "mode_in double y0, mode_in double y1, mode_in int w, "
        "mode_in int h, mode_in int iters, mode_out int counts[h][w]) "
        '"one Mandelbrot tile (parallel imaging workload)" '
        'CalcOrder "w * h * iters" '
        'Calls "C" mandel(x0, x1, y0, y1, w, h, iters, counts);',
        mandel_exec,
    )
    return registry


def server_main(argv: Optional[list[str]] = None) -> int:
    """``ninf-server``: run a computational server until interrupted."""
    from repro.metaserver import MetaClient
    from repro.server import NinfServer

    parser = argparse.ArgumentParser(
        prog="ninf-server",
        description="Run a Ninf computational server with the standard "
                    "numerical library.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5656)
    parser.add_argument("--pes", type=int, default=4,
                        help="processing elements (default 4, like the J90)")
    parser.add_argument("--mode", choices=["task", "data"], default="task",
                        help="task-parallel (1 PE/call) or data-parallel "
                             "(all PEs/call, serialized)")
    parser.add_argument("--policy", default="fcfs",
                        choices=["fcfs", "sjf", "fpfs", "fpmpfs"])
    parser.add_argument("--name", default="ninf-server")
    parser.add_argument("--register-with", metavar="HOST:PORT",
                        help="metaserver to register with")
    parser.add_argument("--heartbeat-to", metavar="HOST:PORT[,HOST:PORT...]",
                        help="push leased load-report heartbeats to these "
                             "metaserver replicas (a heartbeat is a "
                             "registration; see PROTOCOL.md MS_HEARTBEAT)")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="seconds between heartbeat pushes (default 1.0; "
                             "the lease is 3x this)")
    parser.add_argument("--secret",
                        help="shared HMAC secret for signing heartbeats")
    args = parser.parse_args(argv)

    server = NinfServer(standard_registry(), host=args.host, port=args.port,
                        num_pes=args.pes, mode=args.mode,
                        policy=args.policy, name=args.name)
    server.start()
    host, port = server.address
    print(f"{args.name}: serving {server.registry.names()} on "
          f"{host}:{port} ({args.pes} PEs, {args.mode}-parallel, "
          f"{args.policy})")
    if args.register_with:
        ms_host, ms_port = args.register_with.rsplit(":", 1)
        with MetaClient(ms_host, int(ms_port)) as meta_client:
            meta_client.register_server(server, name=args.name)
        print(f"registered with metaserver {args.register_with}")
    reporter = None
    if args.heartbeat_to:
        from repro.server import HeartbeatReporter

        replicas = _parse_endpoints(args.heartbeat_to)
        reporter = HeartbeatReporter(
            server, replicas, interval=args.heartbeat_interval,
            secret=args.secret.encode() if args.secret else None)
        reporter.start()
        print(f"heartbeating to {args.heartbeat_to} "
              f"every {args.heartbeat_interval}s")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
        if reporter is not None:
            reporter.stop()
        server.stop()
    return 0


def _parse_endpoints(spec: str) -> list[tuple[str, int]]:
    """Parse a comma-separated ``HOST:PORT[,HOST:PORT...]`` list."""
    endpoints = []
    for item in spec.split(","):
        host, port = item.strip().rsplit(":", 1)
        endpoints.append((host, int(port)))
    return endpoints


def metaserver_main(argv: Optional[list[str]] = None) -> int:
    """``ninf-metaserver``: run the metaserver until interrupted."""
    from repro.metaserver import Metaserver, make_scheduler

    parser = argparse.ArgumentParser(
        prog="ninf-metaserver",
        description="Run a Ninf metaserver (monitoring + scheduling).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5655)
    parser.add_argument("--scheduler", default="load",
                        choices=["round-robin", "load", "bandwidth"])
    parser.add_argument("--poll-interval", type=float, default=5.0)
    parser.add_argument("--peers", metavar="HOST:PORT[,HOST:PORT...]",
                        help="sibling metaserver replicas to gossip "
                             "directory deltas with (MS_SYNC)")
    parser.add_argument("--gossip-interval", type=float, default=1.0,
                        help="seconds between gossip rounds (default 1.0)")
    parser.add_argument("--secret",
                        help="shared HMAC secret; rejects unsigned "
                             "MS_HEARTBEAT pushes when set")
    args = parser.parse_args(argv)

    meta = Metaserver(host=args.host, port=args.port,
                      scheduler=make_scheduler(args.scheduler),
                      poll_interval=args.poll_interval,
                      peers=_parse_endpoints(args.peers) if args.peers else (),
                      gossip_interval=args.gossip_interval,
                      secret=args.secret.encode() if args.secret else None)
    meta.start()
    host, port = meta.address
    print(f"metaserver on {host}:{port} (scheduler={args.scheduler}, "
          f"polling every {args.poll_interval}s"
          + (f", gossiping with {args.peers}" if args.peers else "") + ")")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
        meta.stop()
    return 0


def experiment_main(argv: Optional[list[str]] = None) -> int:
    """``ninf-experiment``: regenerate a paper table/figure or the report.

    ``--trace FILE`` installs a process-wide tracer for the run
    (:func:`repro.obs.use_tracer`) and saves every collected span to
    ``FILE`` as JSON lines -- any target that drives the simulator or
    the live stack then leaves an OBSERVABILITY.md-schema trace behind.
    """
    parser = argparse.ArgumentParser(
        prog="ninf-experiment",
        description="Run the paper's experiments on the simulator.",
    )
    parser.add_argument("target", choices=list(EXPERIMENT_TARGETS),
                        help="which artifact to regenerate")
    parser.add_argument("--fast", action="store_true",
                        help="smaller sweeps")
    parser.add_argument("--quick", action="store_true",
                        help="alias for --fast")
    parser.add_argument("--plot", action="store_true",
                        help="render figures as ASCII charts")
    parser.add_argument("--output", default="EXPERIMENTS.md",
                        help="output path for the report target")
    parser.add_argument("--trace", metavar="FILE",
                        help="capture the run's spans to FILE (JSON lines)")
    args = parser.parse_args(argv)
    args.fast = args.fast or args.quick

    if args.trace:
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            code = _experiment_dispatch(args)
        count = tracer.save(args.trace)
        print(f"wrote {count} spans to {args.trace}")
        return code
    return _experiment_dispatch(args)


def _experiment_dispatch(args) -> int:
    """Run one parsed ``ninf-experiment`` target."""
    if args.target == "breakdown":
        from repro.experiments.breakdown import (
            format_breakdown,
            live_loopback_breakdown,
            sim_breakdown,
        )
        from repro.obs import current_tracer

        # Under --trace the active tracer collects both runs' spans, so
        # the saved file holds the live and simulated schemas side by
        # side; otherwise each driver uses its own private tracer.
        active = current_tracer()
        shared = active if active.enabled else None
        calls = 2 if args.fast else 4
        live_row, _ = live_loopback_breakdown(calls=calls, tracer=shared)
        # The same-host transport ablation: identical calls through the
        # threaded client over loopback TCP vs the shared-memory rings
        # -- the transfer column is where the difference lands.  The
        # server runs in a child process (cross_process) and the
        # matrices are big enough that transfer dominates; an
        # in-process comparison would only measure GIL scheduling.
        # More calls than the stock row: call 1 pays the dial plus the
        # shm handshake (ring creation + mmap), so short runs would
        # compare handshakes, not steady-state transfer.
        xproc_n = 128 if args.fast else 512
        xproc_calls = 4 if args.fast else 8
        tcp_row, _ = live_loopback_breakdown(calls=xproc_calls, n=xproc_n,
                                             tracer=shared, shm=False,
                                             cross_process=True)
        shm_row, _ = live_loopback_breakdown(calls=xproc_calls, n=xproc_n,
                                             tracer=shared, shm=True,
                                             cross_process=True)
        sim_row, _ = sim_breakdown(c=2 if args.fast else 4, tracer=shared)
        print(format_breakdown([live_row, tcp_row, shm_row, sim_row]))
        return 0
    if args.target == "report":
        from repro.experiments.report import generate_report

        content = generate_report(fast=args.fast)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(f"wrote {args.output}")
        return 0

    sizes = (600, 1400) if args.fast else (600, 1000, 1400)
    clients = (1, 4, 16) if args.fast else (1, 2, 4, 8, 16)
    if args.target in ("table3", "table4", "table5", "table6", "table7"):
        from repro.experiments import lan_multiclient, wan

        builders = {
            "table3": lambda: lan_multiclient.table3_1pe(sizes, clients),
            "table4": lambda: lan_multiclient.table4_4pe(sizes, clients),
            "table5": lambda: lan_multiclient.table5_smp(),
            "table6": lambda: wan.table6_1pe(sizes, clients),
            "table7": lambda: wan.table7_4pe(sizes, clients),
        }
        print(builders[args.target]().format())
        return 0
    if args.target == "partition":
        from repro.experiments.partition import (
            format_partition,
            partition_ablation,
        )

        print(format_partition(partition_ablation(quick=args.fast)))
        return 0
    if args.target == "availability":
        from repro.experiments import availability_ablation, format_availability

        rates = (0.0, 0.1, 0.3) if args.fast else (0.0, 0.05, 0.1, 0.2, 0.3)
        print(format_availability(availability_ablation(fault_rates=rates)))
        return 0
    if args.target == "overload":
        from repro.experiments import (
            failover_ablation,
            format_failover,
            format_overload,
            overload_ablation,
        )

        if args.fast:
            loads = (0.5, 2.0)
            over = overload_ablation(load_factors=loads, horizon=40.0)
            fail = failover_ablation(kill_fractions=(0.0, 0.5),
                                     n_servers=2, c=4, horizon=40.0)
        else:
            over = overload_ablation()
            fail = failover_ablation()
        print("## Overload: shed vs queue\n")
        print(format_overload(over))
        print("\n## Availability under server kills\n")
        print(format_failover(fail))
        return 0
    if args.target == "table8":
        from repro.experiments.ep import table8_ep

        for table in table8_ep(clients=clients).values():
            print(table.format())
        return 0
    if args.target in ("fig3", "fig4"):
        from repro.experiments import single_client

        build = (single_client.fig3_sparc_clients if args.target == "fig3"
                 else single_client.fig4_alpha_client)
        curves = build()
        if args.plot:
            from repro.experiments.plots import line_chart

            series = {name: [(p.n, p.mflops) for p in curve.points]
                      for name, curve in curves.items()}
            print(line_chart(series, title=f"{args.target} (model)",
                             x_label="n", y_label="Mflops"))
            return 0
        for name, curve in curves.items():
            points = "  ".join(f"{p.n}:{p.mflops:.1f}" for p in curve.points)
            print(f"{name}: {points}")
        return 0
    if args.target == "fig5":
        from repro.experiments.single_client import fig5_throughput

        data = fig5_throughput()
        if args.plot:
            from repro.experiments.plots import line_chart

            series = {pair: [(p.nbytes / 1e6, p.throughput / 1e6)
                             for p in points]
                      for pair, points in data.items()}
            print(line_chart(series, title="fig5 (model)",
                             x_label="transfer MB", y_label="MB/s"))
            return 0
        for pair, points in data.items():
            ramp = "  ".join(f"{p.nbytes/1e6:.2f}MB:{p.throughput/1e6:.2f}"
                             for p in points)
            print(f"{pair}: {ramp}")
        return 0
    if args.target == "fig7":
        from repro.experiments.lan_multiclient import fig7_surface
        from repro.experiments.plots import surface_chart

        sizes_f7 = (600, 1400) if args.fast else (600, 1000, 1400)
        clients_f7 = (1, 4, 16) if args.fast else (1, 2, 4, 8, 16)
        surfaces = fig7_surface(sizes=sizes_f7, clients=clients_f7)
        for label, surface in surfaces.items():
            print(surface_chart(surface, title=f"Fig 7 ({label})",
                                x_label="c", y_label="n"))
            print()
        return 0
    if args.target == "fig10":
        from repro.experiments.wan import fig10_multisite

        for cell in fig10_multisite(sizes=sizes):
            print(f"n={cell.n} c/site={cell.clients_per_site} "
                  f"deterioration={cell.ochau_deterioration*100:.0f}% "
                  f"cpu={cell.result.row.cpu_utilization:.1f}%")
        return 0
    if args.target == "fig11":
        from repro.experiments.ep import fig11_metaserver

        for m, label in ((24, "sample"), (28, "class A"), (30, "class B")):
            points = fig11_metaserver(m)
            print(label, " ".join(f"p={p.processors}:{p.speedup:.1f}x"
                                  for p in points))
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(experiment_main())
