"""Flow-level network model with max-min fair bandwidth sharing.

The paper's WAN observations are bandwidth-sharing effects: a 0.17 MB/s
site uplink shared by ``c`` clients delivers ~``0.17/c`` MB/s per client
(Tables 6/7), while clients at four different sites keep most of their
point-to-point bandwidth because they traverse different backbones
(Fig 10).  Both fall out of a *flow-level* model: each bulk transfer is a
fluid flow along a route of links, and link capacity is divided among
concurrent flows by weighted max-min fairness (progressive filling).

This is the standard abstraction used by grid simulators (the authors'
own later Bricks simulator, and SimGrid) and is far cheaper than packet
simulation while preserving exactly the contention behaviour the paper
measures.

Latency is modelled as a fixed one-way delay before a flow starts
consuming bandwidth; the paper notes latency "was not a significant
issue due to larger grain size" and the model reflects that.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.sim.engine import EventHandle, Signal, Simulator

__all__ = ["Flow", "Link", "Network", "Route"]


class Link:
    """A network link with capacity in bytes/second and one-way latency."""

    def __init__(self, name: str, capacity: float, latency: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        if latency < 0:
            raise ValueError(f"link latency must be >= 0, got {latency}")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self.bytes_carried = 0.0
        self._busy_integral = 0.0
        self._current_rate = 0.0
        self._last_update = 0.0

    def _advance(self, now: float) -> None:
        dt = now - self._last_update
        if dt > 0:
            self.bytes_carried += self._current_rate * dt
            self._busy_integral += (self._current_rate / self.capacity) * dt
            self._last_update = now

    def utilization(self, now: float) -> float:
        """Time-averaged fraction of capacity used since t=0."""
        self._advance(now)
        if now <= 0:
            return 0.0
        return self._busy_integral / now

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity/1e6:.3g} MB/s>"


class Route:
    """An ordered sequence of links; total latency is the sum of hops."""

    def __init__(self, links: Sequence[Link], name: str = ""):
        if not links:
            raise ValueError("a route needs at least one link")
        self.links = tuple(links)
        self.name = name or "->".join(l.name for l in links)

    @property
    def latency(self) -> float:
        return sum(l.latency for l in self.links)

    @property
    def bottleneck_capacity(self) -> float:
        return min(l.capacity for l in self.links)

    def __repr__(self) -> str:
        return f"<Route {self.name}>"


class Flow:
    """A bulk transfer in progress.  ``done`` fires when the last byte lands.

    The flow's achieved mean throughput is available afterwards via
    :attr:`mean_throughput`.
    """

    __slots__ = ("route", "size", "remaining", "weight", "rate", "done",
                 "start_time", "active_time", "finish_time")

    def __init__(self, route: Route, size: float, weight: float, done: Signal,
                 start_time: float):
        self.route = route
        self.size = size
        self.remaining = size
        self.weight = weight
        self.rate = 0.0
        self.done = done
        self.start_time = start_time          # when transfer was requested
        self.active_time: Optional[float] = None   # after latency
        self.finish_time: Optional[float] = None

    @property
    def mean_throughput(self) -> float:
        """Bytes/second achieved end to end (including latency)."""
        if self.finish_time is None:
            raise RuntimeError("flow has not finished")
        elapsed = self.finish_time - self.start_time
        if elapsed <= 0:
            return math.inf
        return self.size / elapsed


class Network:
    """Tracks active flows and keeps their rates max-min fair.

    All state changes (flow arrival after its latency, flow completion)
    trigger a global rate recomputation via progressive filling; each
    flow's completion event is rescheduled accordingly.  Complexity per
    event is O(flows x links), ample for the paper's scales (tens of
    concurrent flows).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._flows: list[Flow] = []
        self._links_seen: set[Link] = set()
        self._next_event: Optional[EventHandle] = None
        self._last_update = sim.now
        self.completed_flows = 0

    # -- public API ----------------------------------------------------------

    def transfer(self, route: Route, nbytes: float, weight: float = 1.0) -> Signal:
        """Start a transfer of ``nbytes`` along ``route``.

        Returns a :class:`Signal` that fires (with the :class:`Flow`) when
        the transfer completes.  Zero-byte transfers complete after the
        route latency alone.
        """
        if nbytes < 0 or math.isnan(nbytes):
            raise ValueError(f"invalid transfer size {nbytes}")
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        done = Signal(self.sim)
        flow = Flow(route, nbytes, weight, done, self.sim.now)
        self.sim.schedule(route.latency, self._flow_arrives, flow)
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rates(self) -> dict[Flow, float]:
        """Snapshot of current per-flow rates (bytes/second)."""
        return {f: f.rate for f in self._flows}

    # -- internals --------------------------------------------------------------

    def _flow_arrives(self, flow: Flow) -> None:
        self._advance()
        flow.active_time = self.sim.now
        if flow.remaining <= 0.0:
            self._finish(flow)
            return
        self._flows.append(flow)
        self._recompute()

    def _advance(self) -> None:
        dt = self.sim.now - self._last_update
        if dt > 0:
            link_rates: dict[Link, float] = {}
            for flow in self._flows:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
                for link in flow.route.links:
                    link_rates[link] = link_rates.get(link, 0.0) + flow.rate
            # Update link accounting with the rates that were in effect.
            for link, rate in link_rates.items():
                link._current_rate = rate
                link._advance(self.sim.now)
        self._last_update = self.sim.now

    def _recompute(self) -> None:
        """Progressive-filling weighted max-min fair allocation."""
        unfrozen = list(self._flows)
        for flow in unfrozen:
            flow.rate = 0.0
        spare: dict[Link, float] = {}
        counts: dict[Link, float] = {}
        for flow in self._flows:
            for link in flow.route.links:
                spare.setdefault(link, link.capacity)
                counts[link] = counts.get(link, 0.0) + flow.weight
        while unfrozen:
            # Find the tightest link among those carrying unfrozen flows.
            bottleneck: Optional[Link] = None
            best_fair = math.inf
            for link, weight_sum in counts.items():
                if weight_sum <= 0:
                    continue
                fair = spare[link] / weight_sum
                if fair < best_fair:
                    best_fair = fair
                    bottleneck = link
            if bottleneck is None:
                break
            # Freeze every unfrozen flow crossing the bottleneck.
            frozen_now = [f for f in unfrozen if bottleneck in f.route.links]
            for flow in frozen_now:
                flow.rate = best_fair * flow.weight
                unfrozen.remove(flow)
                for link in flow.route.links:
                    spare[link] -= flow.rate
                    counts[link] -= flow.weight
            counts[bottleneck] = 0.0
        # Record instantaneous link rates for utilization accounting.
        link_rates: dict[Link, float] = {}
        for flow in self._flows:
            for link in flow.route.links:
                self._links_seen.add(link)
                link_rates[link] = link_rates.get(link, 0.0) + flow.rate
        for link in self._links_seen:
            link._advance(self.sim.now)
            link._current_rate = link_rates.get(link, 0.0)
        self._reschedule()

    def _reschedule(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        soonest: Optional[Flow] = None
        soonest_dt = math.inf
        for flow in self._flows:
            if flow.rate <= 0:
                continue
            dt = flow.remaining / flow.rate
            if dt < soonest_dt:
                soonest_dt = dt
                soonest = flow
        if soonest is not None:
            self._next_event = self.sim.schedule(soonest_dt, self._on_completion, soonest)

    def _on_completion(self, flow: Flow) -> None:
        self._next_event = None
        self._advance()
        flow.remaining = 0.0
        finished = [f for f in self._flows if f.remaining <= 1e-9]
        for f in finished:
            self._flows.remove(f)
        self._recompute()
        for f in finished:
            self._finish(f)

    def _finish(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.rate = 0.0
        flow.remaining = 0.0  # clear sub-epsilon float dust
        self.completed_flows += 1
        flow.done.fire(flow)


def duplex(name: str, capacity: float, latency: float = 0.0) -> tuple[Link, Link]:
    """Convenience: create an up/down pair of identical simplex links."""
    return (
        Link(f"{name}.up", capacity, latency),
        Link(f"{name}.down", capacity, latency),
    )
