"""Discrete-event simulation substrate for the Ninf global-computing simulator.

The SC'97 paper concludes that the authors planned to "build a global
computing simulator for Ninf, on which we could readily test different
client network topologies under various communication and other
parameters".  This package is that simulator's substrate:

- :mod:`repro.sim.engine` -- event heap, generator-based processes,
  timeouts, signals, and deterministic execution.
- :mod:`repro.sim.resources` -- FCFS resources, priority resources,
  processor-sharing servers, and stores.
- :mod:`repro.sim.network` -- a flow-level network model with max-min fair
  bandwidth sharing across multi-link routes (the mechanism behind the
  paper's WAN saturation results).
- :mod:`repro.sim.machine` -- machine models: processing elements,
  Unix-style load average, and CPU-utilization accounting.

Everything is deterministic given a seed; simulated time is a float in
seconds.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    SimTimeError,
    Simulator,
    Timeout,
)
from repro.sim.resources import (
    PriorityResource,
    ProcessorSharingServer,
    Resource,
    Store,
)
from repro.sim.network import Flow, Link, Network, Route
from repro.sim.machine import Machine, MachineStats, Task

__all__ = [
    "AllOf",
    "AnyOf",
    "Flow",
    "Interrupt",
    "Link",
    "Machine",
    "MachineStats",
    "Network",
    "PriorityResource",
    "Process",
    "ProcessorSharingServer",
    "Resource",
    "Route",
    "Signal",
    "SimTimeError",
    "Simulator",
    "Store",
    "Task",
    "Timeout",
]
