"""Machine model: processing elements, load average, CPU utilization.

A :class:`Machine` is a pool of ``num_pes`` processing elements modelled
as one :class:`~repro.sim.resources.ProcessorSharingServer` of capacity
``num_pes`` (units: PE-seconds of service per second).  Tasks declare how
many PEs they can exploit:

- *task-parallel* Ninf execution (the paper's 1-PE mode): each call is a
  task with ``max_pes=1``; up to ``num_pes`` run unimpeded, beyond that
  the OS time-slices (fluid processor sharing).
- *data-parallel* execution (the 4-PE mode): each call is a task with
  ``max_pes=num_pes`` and the caller serializes calls FCFS, matching the
  paper's "optimally parallelized version with simultaneous execution on
  4 PEs for each Ninf_call, invoked in sequence".

Observable statistics reproduce the columns of the paper's tables:

- **CPU utilization** -- delivered PE-time over a measurement window,
  as a percentage of ``num_pes`` x window.
- **load average** -- a Unix-style exponentially damped average of the
  number of runnable threads, with a 60 s time constant; a task
  contributes ``threads`` runnable threads while it is computing and
  (like a forked Ninf executable blocked at a spin barrier) one thread
  while queued.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.sim.engine import Simulator
from repro.sim.resources import ProcessorSharingServer, PSJob, Resource

__all__ = ["LoadAverage", "Machine", "MachineStats", "Task"]


class LoadAverage:
    """Exponentially damped average of an integer-valued signal.

    Mirrors the classic Unix 1-minute load average: between changes the
    average decays toward the current value with time constant ``tau``.
    """

    def __init__(self, sim: Simulator, tau: float = 60.0, initial: float = 0.0):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.sim = sim
        self.tau = tau
        self._value = initial
        self._level = 0.0
        self._last_update = sim.now
        self.peak = initial

    def _advance(self) -> None:
        dt = self.sim.now - self._last_update
        if dt > 0:
            decay = math.exp(-dt / self.tau)
            self._value = self._value * decay + self._level * (1.0 - decay)
            self._last_update = self.sim.now
            if self._value > self.peak:
                self.peak = self._value

    def set_level(self, level: float) -> None:
        """Change the instantaneous signal (number of runnable threads)."""
        self._advance()
        self._level = level

    def adjust(self, delta: float) -> None:
        """Shift the instantaneous level by ``delta`` threads."""
        self.set_level(self._level + delta)

    @property
    def value(self) -> float:
        self._advance()
        return self._value

    @property
    def level(self) -> float:
        return self._level


class MachineStats:
    """Windowed statistics snapshot support for a :class:`Machine`."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.window_start = machine.sim.now
        self._busy_at_start = machine._busy_integral()
        self._load_samples: list[float] = []

    def sample_load(self) -> None:
        """Record the current 1-minute load average into the window."""
        self._load_samples.append(self.machine.load_average.value)

    @property
    def cpu_utilization(self) -> float:
        """Percent of total PE capacity delivered during the window."""
        now = self.machine.sim.now
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        busy = self.machine._busy_integral() - self._busy_at_start
        return 100.0 * busy / (elapsed * self.machine.num_pes)

    @property
    def mean_load_average(self) -> float:
        if not self._load_samples:
            return self.machine.load_average.value
        return sum(self._load_samples) / len(self._load_samples)

    @property
    def peak_load_average(self) -> float:
        if not self._load_samples:
            return self.machine.load_average.value
        return max(self._load_samples)


class Task:
    """A unit of computation on a machine.

    ``work`` is in PE-seconds: a task that takes ``T`` seconds on a
    single dedicated PE has work ``T``; a data-parallel task that takes
    ``T`` seconds on all ``p`` PEs has work ``T*p`` with ``max_pes=p``.
    """

    __slots__ = ("work", "max_pes", "threads", "job", "submit_time",
                 "start_time", "finish_time")

    def __init__(self, work: float, max_pes: float, threads: int):
        self.work = work
        self.max_pes = max_pes
        self.threads = threads
        self.job: Optional[PSJob] = None
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None


class Machine:
    """A compute server with ``num_pes`` processing elements.

    ``switch_overhead`` adds a fixed PE-seconds cost per task whenever
    more than ``num_pes`` tasks are resident, modelling context/thread
    switching (the paper's SMP multithreading discussion); zero by
    default because the paper found J90 task switching cheap.
    """

    def __init__(self, sim: Simulator, name: str, num_pes: int,
                 switch_overhead: float = 0.0, load_tau: float = 60.0):
        if num_pes < 1:
            raise ValueError(f"num_pes must be >= 1, got {num_pes}")
        self.sim = sim
        self.name = name
        self.num_pes = num_pes
        self.switch_overhead = switch_overhead
        self.cpu = ProcessorSharingServer(sim, capacity=float(num_pes),
                                          name=f"{name}.cpu")
        self.load_average = LoadAverage(sim, tau=load_tau)
        self.serial_gate = Resource(sim, capacity=1, name=f"{name}.serial")
        self.tasks_completed = 0

    # -- execution -----------------------------------------------------------

    def run(self, work: float, max_pes: float = 1.0,
            threads: Optional[int] = None) -> Generator:
        """Process helper: execute ``work`` PE-seconds, sharing the CPU.

        Yield from this inside a process::

            yield from machine.run(work=12.5, max_pes=1)

        While computing, the task contributes ``threads`` runnable
        threads to the load average (default: ``ceil(max_pes)``).
        """
        if threads is None:
            threads = max(1, int(math.ceil(max_pes)))
        effective_work = work
        if self.switch_overhead > 0 and self.cpu.active_jobs >= self.num_pes:
            effective_work += self.switch_overhead
        task = Task(effective_work, max_pes, threads)
        task.submit_time = self.sim.now
        task.start_time = self.sim.now
        self.load_average.adjust(threads)
        try:
            job = self.cpu.submit(effective_work, max_rate=max_pes)
            task.job = job
            yield job
        finally:
            self.load_average.adjust(-threads)
        task.finish_time = self.sim.now
        self.tasks_completed += 1
        return task

    def run_serialized(self, work: float, threads: Optional[int] = None) -> Generator:
        """Data-parallel mode: queue FCFS, then run on all PEs.

        Returns ``(queue_wait_seconds, task)``.  A queued task contributes
        one runnable thread (the forked executable at its spin barrier).
        """
        enqueue_time = self.sim.now
        self.load_average.adjust(1)
        req = self.serial_gate.request()
        try:
            yield req
        except BaseException:
            self.load_average.adjust(-1)
            raise
        self.load_average.adjust(-1)
        queue_wait = self.sim.now - enqueue_time
        try:
            task = yield from self.run(work, max_pes=float(self.num_pes),
                                       threads=threads)
        finally:
            self.serial_gate.release(req)
        return queue_wait, task

    # -- statistics ------------------------------------------------------------

    def _busy_integral(self) -> float:
        self.cpu._advance()
        return self.cpu._busy_integral * self.cpu.capacity

    def stats_window(self) -> MachineStats:
        """Open a measurement window (call at the start of a benchmark)."""
        return MachineStats(self)

    @property
    def active_tasks(self) -> int:
        return self.cpu.active_jobs

    def __repr__(self) -> str:
        return f"<Machine {self.name} pes={self.num_pes}>"
