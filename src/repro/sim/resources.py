"""Resources for the simulation engine.

Three kinds of contention primitives cover everything the Ninf model
needs:

:class:`Resource`
    Classic counted resource with a FCFS wait queue -- models the Ninf
    server's fork/exec job slots and single-PE exclusive execution.
:class:`PriorityResource`
    Same, but the queue is ordered by a priority key -- models SJF and
    the fit-processors-first scheduling policies of the paper's §5.
:class:`ProcessorSharingServer`
    A server of fixed aggregate capacity shared equally among the jobs
    currently in service (optionally capped per job) -- models a PE
    time-slicing among multiple Ninf executables, and SMP thread
    scheduling.
:class:`Store`
    An unbounded FIFO of items with blocking ``get`` -- models job
    queues between the accept loop and executor processes.

All wait queues are deterministic: ties broken by arrival sequence.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro.sim.engine import Awaitable, EventHandle, Signal, SimTimeError, Simulator

__all__ = [
    "PriorityResource",
    "ProcessorSharingServer",
    "PSJob",
    "Request",
    "Resource",
    "Store",
]


class Request(Awaitable):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "priority", "seq", "_callback", "granted", "cancelled")

    def __init__(self, resource: "Resource", priority: float, seq: int):
        self.resource = resource
        self.priority = priority
        self.seq = seq
        self._callback: Optional[Callable] = None
        self.granted = False
        self.cancelled = False

    def _subscribe(self, callback: Callable) -> None:
        self._callback = callback
        self.resource._maybe_grant()

    def _unsubscribe(self, callback: Callable) -> None:
        # A process abandoning the wait (AnyOf loser / interrupt).
        self.cancelled = True
        self._callback = None
        if self.granted:
            # Granted but the waiter went away: hand the slot back.
            self.resource.release(self)

    def _grant(self, sim: Simulator) -> None:
        self.granted = True
        cb = self._callback
        if cb is not None:
            sim.schedule(0.0, cb, self, None)

    def __lt__(self, other: "Request") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class Resource:
    """Counted resource with a FCFS queue and utilization accounting."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: list[Request] = []
        self._seq = 0
        # Time integrals for statistics.
        self._busy_integral = 0.0  # ∫ in_use dt
        self._queue_integral = 0.0  # ∫ len(queue) dt
        self._last_change = sim.now
        self._t0 = sim.now

    # -- statistics --------------------------------------------------------

    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_integral += self.in_use * dt
            self._queue_integral += len(self._queue) * dt
            self._last_change = self.sim.now

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def mean_queue_length(self) -> float:
        """Time-averaged number of waiting requests since creation."""
        self._account()
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._queue_integral / elapsed

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- acquire/release ----------------------------------------------------

    def request(self, priority: float = 0.0) -> Request:
        """Create a claim; yield it from a process to wait for a slot."""
        self._account()
        req = Request(self, priority, self._seq)
        self._seq += 1
        self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot to the pool."""
        if not request.granted:
            raise RuntimeError("releasing a request that was never granted")
        self._account()
        request.granted = False
        self.in_use -= 1
        self._maybe_grant()

    def _pop_next(self) -> Optional[Request]:
        while self._queue:
            req = self._queue.pop(0)
            if not req.cancelled:
                return req
        return None

    def _maybe_grant(self) -> None:
        self._account()
        while self.in_use < self.capacity:
            # Only grant requests whose waiters have subscribed.
            candidate = None
            for req in self._queue:
                if req.cancelled:
                    continue
                if req._callback is None:
                    # Not yet yielded; keep FCFS order -- stop scanning so a
                    # not-yet-subscribed earlier arrival keeps its place.
                    return
                candidate = req
                break
            if candidate is None:
                return
            self._queue.remove(candidate)
            self.in_use += 1
            candidate._grant(self.sim)


class PriorityResource(Resource):
    """Resource whose queue is ordered by ``priority`` (lower first).

    Ties are FCFS.  Used for Shortest-Job-First (priority = predicted
    service time) and fit-processors-first policies.
    """

    def _maybe_grant(self) -> None:
        self._account()
        while self.in_use < self.capacity:
            ready = [r for r in self._queue if not r.cancelled and r._callback is not None]
            if not ready:
                return
            candidate = min(ready)
            self._queue.remove(candidate)
            self.in_use += 1
            candidate._grant(self.sim)


class PSJob(Awaitable):
    """A job inside a :class:`ProcessorSharingServer`; fires on completion."""

    __slots__ = ("server", "work", "remaining", "weight", "max_rate", "_callback",
                 "start_time", "finish_time", "seq")

    def __init__(self, server: "ProcessorSharingServer", work: float,
                 weight: float, max_rate: float, seq: int):
        self.server = server
        self.work = work
        self.remaining = work
        self.weight = weight
        self.max_rate = max_rate
        self.seq = seq
        self._callback: Optional[Callable] = None
        self.start_time = server.sim.now
        self.finish_time: Optional[float] = None

    def _subscribe(self, callback: Callable) -> None:
        self._callback = callback
        self.server._activate(self)

    def _unsubscribe(self, callback: Callable) -> None:
        self._callback = None
        self.server._abandon(self)

    @property
    def rate(self) -> float:
        """Current service rate of this job (0 if not active)."""
        return self.server._rates.get(self, 0.0)


class ProcessorSharingServer:
    """Fixed-capacity server shared among active jobs.

    Each active job receives ``min(max_rate, capacity * weight / W)``
    where ``W`` is the total weight of active jobs; capacity freed by
    capped jobs is redistributed to the uncapped ones (water-filling),
    so the allocation is max-min fair in one dimension.

    ``work`` is in abstract service units (e.g. flop for a CPU model);
    ``capacity`` in units per second.
    """

    def __init__(self, sim: Simulator, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._jobs: list[PSJob] = []
        self._rates: dict[PSJob, float] = {}
        self._seq = 0
        self._last_update = sim.now
        self._next_completion: Optional[EventHandle] = None
        self._busy_integral = 0.0  # ∫ (allocated rate / capacity) dt
        self._t0 = sim.now
        self.completed_jobs = 0

    # -- public API ---------------------------------------------------------

    def submit(self, work: float, weight: float = 1.0,
               max_rate: float = math.inf) -> PSJob:
        """Create a job; yield it from a process to wait for completion."""
        if work < 0 or math.isnan(work):
            raise ValueError(f"invalid work amount {work}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        job = PSJob(self, work, weight, max_rate, self._seq)
        self._seq += 1
        return job

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def utilization(self) -> float:
        """Time-averaged fraction of capacity delivered since creation."""
        self._advance()
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / elapsed

    # -- internals ------------------------------------------------------------

    def _activate(self, job: PSJob) -> None:
        self._advance()
        self._jobs.append(job)
        if job.remaining <= 0.0:
            # Zero-work job: complete immediately (still via the event loop).
            self._jobs.remove(job)
            self._complete(job)
        self._recompute()

    def _abandon(self, job: PSJob) -> None:
        if job in self._rates or job in self._jobs:
            self._advance()
            if job in self._jobs:
                self._jobs.remove(job)
            self._recompute()

    def _advance(self) -> None:
        """Drain accumulated service from each active job up to now."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            total_rate = 0.0
            for job in self._jobs:
                rate = self._rates.get(job, 0.0)
                job.remaining = max(0.0, job.remaining - rate * dt)
                total_rate += rate
            self._busy_integral += (total_rate / self.capacity) * dt
        self._last_update = self.sim.now

    def _recompute(self) -> None:
        """Water-filling allocation, then reschedule the next completion."""
        self._rates = _waterfill(
            self.capacity,
            [(job, job.weight, job.max_rate) for job in self._jobs],
        )
        if self._next_completion is not None:
            self._next_completion.cancel()
            self._next_completion = None
        soonest: Optional[PSJob] = None
        soonest_dt = math.inf
        for job in self._jobs:
            rate = self._rates.get(job, 0.0)
            if rate <= 0:
                continue
            dt = job.remaining / rate
            if dt < soonest_dt:
                soonest_dt = dt
                soonest = job
        if soonest is not None:
            self._next_completion = self.sim.schedule(
                soonest_dt, self._on_completion, soonest
            )

    def _on_completion(self, job: PSJob) -> None:
        self._next_completion = None
        self._advance()
        # Numerical guard: the scheduled job is done by construction.
        job.remaining = 0.0
        finished = [j for j in self._jobs if j.remaining <= 1e-12]
        for j in finished:
            self._jobs.remove(j)
        self._recompute()
        for j in finished:
            self._complete(j)

    def _complete(self, job: PSJob) -> None:
        job.finish_time = self.sim.now
        self.completed_jobs += 1
        cb = job._callback
        job._callback = None
        if cb is not None:
            self.sim.schedule(0.0, cb, job, None)


def _waterfill(
    capacity: float, entries: list[tuple[Any, float, float]]
) -> dict[Any, float]:
    """Weighted max-min allocation of ``capacity`` among ``entries``.

    ``entries`` is a list of ``(key, weight, cap)``.  Returns key->rate.
    Keys whose fair share exceeds their cap are frozen at the cap and the
    surplus redistributed among the rest.
    """
    rates: dict[Any, float] = {}
    remaining = list(entries)
    budget = capacity
    while remaining:
        total_weight = sum(w for _, w, _ in remaining)
        share_per_weight = budget / total_weight
        capped = [(k, w, c) for (k, w, c) in remaining if c < share_per_weight * w]
        if not capped:
            for k, w, _ in remaining:
                rates[k] = share_per_weight * w
            break
        for k, _, c in capped:
            rates[k] = c
            budget -= c
        remaining = [e for e in remaining if e not in capped]
        if budget <= 0:
            for k, _, _ in remaining:
                rates[k] = 0.0
            break
    return rates


class StoreGet(Awaitable):
    """Pending ``get`` on a :class:`Store`; fires with the item."""

    __slots__ = ("store", "_callback")

    def __init__(self, store: "Store"):
        self.store = store
        self._callback: Optional[Callable] = None

    def _subscribe(self, callback: Callable) -> None:
        self._callback = callback
        self.store._dispatch()

    def _unsubscribe(self, callback: Callable) -> None:
        self._callback = None
        if self in self.store._getters:
            self.store._getters.remove(self)


class Store:
    """Unbounded FIFO channel between processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: list[Any] = []
        self._getters: list[StoreGet] = []

    def put(self, item: Any) -> None:
        """Append an item; wakes the oldest blocked getter, if any."""
        self._items.append(item)
        self._dispatch()

    def get(self) -> StoreGet:
        """Create a pending get; yield it from a process."""
        getter = StoreGet(self)
        self._getters.append(getter)
        return getter

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = None
            for g in self._getters:
                if g._callback is not None:
                    getter = g
                    break
            if getter is None:
                return
            self._getters.remove(getter)
            item = self._items.pop(0)
            cb = getter._callback
            getter._callback = None
            self.sim.schedule(0.0, cb, item, None)

    def __len__(self) -> int:
        return len(self._items)
