"""Generator-coroutine discrete-event simulation engine.

The engine is a small, deterministic SimPy-style kernel.  Model code is
written as plain Python generator functions that ``yield`` *awaitables*:

``Timeout(sim, delay)``
    resume after ``delay`` simulated seconds.
``Signal(sim)``
    resume when some other process calls :meth:`Signal.fire`.
``Process``
    resume when the child process terminates (its return value is the
    value of the ``yield`` expression).
``AnyOf([...])`` / ``AllOf([...])``
    resume when any/all of the listed awaitables have fired.

Determinism: events scheduled for the same simulated time fire in
scheduling order (a monotonically increasing sequence number breaks
ties), so a fixed seed yields bit-identical runs.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(name, delay):
...     yield Timeout(sim, delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc("a", 2.0))
>>> _ = sim.process(proc("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Awaitable",
    "EventHandle",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Signal",
    "SimTimeError",
    "Simulator",
    "Timeout",
]


class SimTimeError(ValueError):
    """Raised when an event is scheduled in the past or with NaN delay."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the object passed by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown into a process by :meth:`Process.kill`; must not be caught."""


class EventHandle:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is O(1): the heap entry is marked dead and skipped when
    popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6g} seq={self.seq} {state}>"


class Simulator:
    """The event loop: a binary heap of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq: int = 0
        self._running = False
        self._event_count: int = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if math.isnan(time):
            raise SimTimeError("event time is NaN")
        if time < self.now:
            raise SimTimeError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.time < self.now:  # pragma: no cover - defensive
                raise SimTimeError("event heap corrupted: time went backwards")
            self.now = handle.time
            self._event_count += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains, or until simulated time ``until``.

        When ``until`` is given, ``now`` is advanced to exactly ``until``
        even if the last event fires earlier (so time-averaged statistics
        close their windows consistently).
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not reentrant")
        self._running = True
        try:
            if until is None:
                while self.step():
                    pass
                return
            if until < self.now:
                raise SimTimeError(f"until={until} is before now={self.now}")
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if head.time > until:
                    break
                self.step()
            self.now = max(self.now, until)
        finally:
            self._running = False

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else math.inf

    @property
    def event_count(self) -> int:
        """Number of events executed so far (for tests and budgeting)."""
        return self._event_count

    # -- processes --------------------------------------------------------

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Spawn a process from a generator; it starts at the current time."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """Convenience constructor for :class:`Timeout`."""
        return Timeout(self, delay, value)

    def signal(self) -> "Signal":
        """Convenience constructor for :class:`Signal`."""
        return Signal(self)


class Awaitable:
    """Base for things a process may ``yield``.

    Subclasses implement ``_subscribe(callback)`` where ``callback`` takes
    ``(value, exception)`` and is invoked exactly once, and optionally
    ``_unsubscribe(callback)`` to support cancellation (AnyOf, interrupts).
    """

    def _subscribe(self, callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        raise NotImplementedError

    def _unsubscribe(self, callback: Callable) -> None:  # pragma: no cover
        pass


class Timeout(Awaitable):
    """Fires ``delay`` seconds after construction, resuming with ``value``."""

    __slots__ = ("sim", "delay", "value", "_handle", "_callback")

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        if delay < 0:
            raise SimTimeError(f"negative timeout delay {delay}")
        self.sim = sim
        self.delay = delay
        self.value = value
        self._handle: Optional[EventHandle] = None
        self._callback: Optional[Callable] = None

    def _subscribe(self, callback: Callable) -> None:
        self._callback = callback
        self._handle = self.sim.schedule(self.delay, self._fire)

    def _unsubscribe(self, callback: Callable) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._callback = None

    def _fire(self) -> None:
        cb, self._callback = self._callback, None
        if cb is not None:
            cb(self.value, None)


class Signal(Awaitable):
    """A one-shot event fired explicitly with :meth:`fire` or :meth:`fail`.

    Multiple processes may wait on the same signal; all are resumed (in
    subscription order) with the same value or exception.  Firing twice
    raises ``RuntimeError``.  Late subscribers to an already-fired signal
    are resumed immediately at the current simulated time.
    """

    __slots__ = ("sim", "_waiters", "_fired", "_value", "_exc")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: list[Callable] = []
        self._fired = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError("signal has not fired yet")
        return self._value

    def fire(self, value: Any = None) -> None:
        """Resume all waiters with ``value`` (via zero-delay events)."""
        self._finish(value, None)

    def fail(self, exc: BaseException) -> None:
        """Resume all waiters by raising ``exc`` inside them."""
        self._finish(None, exc)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._fired:
            raise RuntimeError("signal fired twice")
        self._fired = True
        self._value = value
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.schedule(0.0, cb, value, exc)

    def _subscribe(self, callback: Callable) -> None:
        if self._fired:
            self.sim.schedule(0.0, callback, self._value, self._exc)
        else:
            self._waiters.append(callback)

    def _unsubscribe(self, callback: Callable) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass


class Process(Awaitable):
    """A running generator coroutine.

    The generator's ``return`` value becomes the value other processes see
    when they ``yield`` this process.  Uncaught exceptions propagate into
    waiters; if nobody is waiting, they are re-raised out of the event
    loop (failing fast rather than losing errors).
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self._done = Signal(sim)
        self._current: Optional[Awaitable] = None
        self._alive = True
        # Start on a zero-delay event so spawning inside a callback is safe.
        sim.schedule(0.0, self._resume, None, None)

    # -- public API -------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def done(self) -> Signal:
        """Signal fired with the process return value on termination."""
        return self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            return
        self._detach()
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process without running waiters' error paths."""
        if not self._alive:
            return
        self._detach()
        self._alive = False
        self._gen.close()
        if not self._done.fired:
            self._done.fire(None)

    # -- engine plumbing ---------------------------------------------------

    def _detach(self) -> None:
        if self._current is not None:
            self._current._unsubscribe(self._resume)
            self._current = None

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        self._current = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self._done.fire(stop.value)
            return
        except BaseException as error:
            self._alive = False
            if self._done._waiters:
                self._done.fail(error)
            else:
                raise
            return
        if not isinstance(target, Awaitable):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Awaitable instances"
            )
        self._current = target
        target._subscribe(self._resume)

    def _subscribe(self, callback: Callable) -> None:
        self._done._subscribe(callback)

    def _unsubscribe(self, callback: Callable) -> None:
        self._done._unsubscribe(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


class AnyOf(Awaitable):
    """Fires when the first of several awaitables fires.

    Resumes with ``(index, value)`` of the winner; remaining awaitables
    are unsubscribed (timeouts are cancelled).  An exception from any
    member propagates.
    """

    def __init__(self, awaitables: Iterable[Awaitable]):
        self.members = list(awaitables)
        if not self.members:
            raise ValueError("AnyOf requires at least one awaitable")
        self._callback: Optional[Callable] = None
        self._fired = False
        self._member_callbacks: list[Callable] = []

    def _subscribe(self, callback: Callable) -> None:
        self._callback = callback
        for i, member in enumerate(self.members):
            cb = self._make_member_callback(i)
            self._member_callbacks.append(cb)
            member._subscribe(cb)

    def _unsubscribe(self, callback: Callable) -> None:
        self._callback = None
        self._release()

    def _release(self) -> None:
        for member, cb in zip(self.members, self._member_callbacks):
            member._unsubscribe(cb)
        self._member_callbacks = []

    def _make_member_callback(self, index: int) -> Callable:
        def member_fired(value: Any, exc: Optional[BaseException]) -> None:
            if self._fired or self._callback is None:
                return
            self._fired = True
            cb = self._callback
            self._callback = None
            self._release()
            if exc is not None:
                cb(None, exc)
            else:
                cb((index, value), None)

        return member_fired


class AllOf(Awaitable):
    """Fires when every member has fired; resumes with the list of values."""

    def __init__(self, awaitables: Iterable[Awaitable]):
        self.members = list(awaitables)
        self._callback: Optional[Callable] = None
        self._remaining = len(self.members)
        self._values: list[Any] = [None] * len(self.members)
        self._failed = False

    def _subscribe(self, callback: Callable) -> None:
        self._callback = callback
        if not self.members:
            # Empty AllOf completes immediately; needs a sim to schedule on,
            # so fire synchronously (subscriber is a process resume, which is
            # safe to call directly exactly once).
            callback([], None)
            return
        for i, member in enumerate(self.members):
            member._subscribe(self._make_member_callback(i))

    def _make_member_callback(self, index: int) -> Callable:
        def member_fired(value: Any, exc: Optional[BaseException]) -> None:
            if self._failed or self._callback is None:
                return
            if exc is not None:
                self._failed = True
                cb = self._callback
                self._callback = None
                cb(None, exc)
                return
            self._values[index] = value
            self._remaining -= 1
            if self._remaining == 0:
                cb = self._callback
                self._callback = None
                cb(list(self._values), None)

        return member_fired
