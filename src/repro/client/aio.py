"""The natively asynchronous Ninf client.

:class:`AsyncNinfClient` is :class:`~repro.client.NinfClient` rewritten
as coroutines over :class:`~repro.transport.AsyncConnectionPool`: same
two-stage RPC, same signature cache, same retry/dedup/deadline
semantics, same :class:`~repro.client.api.CallRecord` bookkeeping and
OBSERVABILITY.md span schema -- but ``await client.call(...)`` runs on
the caller's event loop with no bridge thread and no blocking socket,
so one process can keep thousands of calls in flight.

The sync :class:`~repro.client.NinfClient` remains the blocking facade
(its default ``transport="asyncio"`` drives
:class:`~repro.transport.FacadeChannel` connections on the shared
client loop); this class is for callers that already live in asyncio.

Loop affinity: all coroutine methods must run on one loop (the pool is
loop-affine).  ``close()`` is synchronous and thread-safe, matching
the channel contract.
"""

from __future__ import annotations

import asyncio
import itertools
import uuid
from typing import Any, Callable, Optional

from repro.client.api import CallRecord, DetachedCall, _call_ids
from repro.idl import Signature
from repro.obs import MetricsRegistry, Tracer, names
from repro.obs.trace import (
    SPAN_COMPUTE,
    SPAN_CONNECT,
    SPAN_MARSHAL,
    SPAN_QUEUE,
    SPAN_RECV,
    SPAN_ROOT,
    SPAN_SEND,
    SPAN_UNMARSHAL,
)
from repro.protocol.errors import ProtocolError, RemoteError, ServerBusy, \
    TimeoutError
from repro.protocol.marshal import marshal_inputs, unmarshal_outputs
from repro.protocol.messages import (
    BusyReply,
    CallHeader,
    ErrorReply,
    JobTimestamps,
    LoadReply,
    MessageType,
)
from repro.transport import AsyncConnectionPool, RetryPolicy, is_transient
from repro.xdr import XdrDecoder, XdrEncoder

__all__ = ["AsyncNinfClient"]


class AsyncNinfClient:
    """Async client binding to one Ninf computational server.

    Construction parameters match :class:`~repro.client.NinfClient`
    (``host``/``port``/``timeout``/``pool``/``max_idle``/``retry``/
    ``retry_calls``/``call_budget``/``fault_plan``/``metrics``/
    ``tracer``/``clock``) with identical semantics -- see that class
    for the full parameter documentation.  The ``retry`` policy's
    backoff schedule is honoured with ``asyncio.sleep``, so a seeded
    policy replays the same schedule on either client.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0,
                 clock=None, pool: bool = True, max_idle: float = 60.0,
                 retry: Optional[RetryPolicy] = None, fault_plan=None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 retry_calls: bool = False,
                 call_budget: Optional[float] = None):
        import time

        self.host = host
        self.port = port
        self.timeout = timeout
        self.clock = clock or time.monotonic
        self.retry = retry
        self.retry_calls = retry_calls
        self.call_budget = call_budget
        self._signatures: dict[str, Signature] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._pool = AsyncConnectionPool(timeout=timeout, pool=pool,
                                         max_idle_seconds=max_idle,
                                         fault_plan=fault_plan,
                                         metrics=self.metrics)
        # Loop-affine (appended between awaits only); unlike the sync
        # client there is no cross-thread writer, so no lock.
        self.records: list[CallRecord] = []
        self._attempts = self.metrics.counter(
            names.CLIENT_ATTEMPTS,
            "Transport exchange attempts (idempotent ops and CALL)")
        self._retries = self.metrics.counter(
            names.CLIENT_RETRIES,
            "Retries taken by this client's idempotent operations")
        self._faults_seen = self.metrics.counter(
            names.CLIENT_FAULTS_SEEN,
            "Transient transport errors observed by this client")
        self._call_seconds = self.metrics.histogram(
            names.CLIENT_CALL_SECONDS,
            "End-to-end Ninf_call latency", labelnames=("function",))

    # -- observability -------------------------------------------------------

    @property
    def attempts(self) -> int:
        """Transport exchange attempts (see :class:`NinfClient`)."""
        return int(self._attempts.value())

    @property
    def retries(self) -> int:
        """Retries taken by retried operations (see :class:`NinfClient`)."""
        return int(self._retries.value())

    @property
    def faults_seen(self) -> int:
        """Transient transport errors observed (see :class:`NinfClient`)."""
        return int(self._faults_seen.value())

    async def fetch_stats(self, fmt: str = "json"):
        """Fetch the *server's* metrics snapshot via the ``STATS`` op."""
        import json

        enc = XdrEncoder()
        enc.pack_string(fmt)
        reply = await self._idempotent(
            lambda: self._roundtrip(MessageType.STATS, enc.getvalue(),
                                    MessageType.STATS_REPLY)
        )
        dec = XdrDecoder(reply)
        reply_fmt = dec.unpack_string()
        text = dec.unpack_string()
        dec.done()
        if reply_fmt == "json":
            return json.loads(text)
        return text

    # -- connection pool -----------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether connections are kept alive across calls."""
        return self._pool.pooling

    def close(self) -> None:
        """Close every pooled connection (idempotent, synchronous)."""
        self._pool.close()

    async def __aenter__(self) -> "AsyncNinfClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()

    # -- retry plumbing ------------------------------------------------------

    async def _roundtrip(self, msg_type: int, payload: bytes,
                         expect: int) -> bytes:
        """One pooled request/reply exchange; burns the channel on error."""
        async with self._pool.lease(self.host, self.port) as channel:
            _reply_type, reply = await channel.request(msg_type, payload,
                                                       expect=expect)
        return reply

    async def _counted(self, fn):
        """Run one exchange attempt, tracking attempts and faults seen."""
        self._attempts.inc()
        try:
            return await fn()
        except BaseException as exc:
            if is_transient(exc) and not isinstance(exc, RemoteError):
                self._faults_seen.inc()
            raise

    async def _retrying(self, fn, deadline: Optional[float] = None):
        """The async twin of ``RetryPolicy.run``: same classification,
        same attempt/retry counters, same jittered backoff schedule and
        ``retry_after`` stretch, but the sleeps are ``asyncio.sleep``
        so the loop stays live."""
        policy = self.retry
        attempt = 1
        while True:
            with policy._lock:
                policy.attempts += 1
            if policy._attempts_metric is not None:
                policy._attempts_metric.inc()
            try:
                return await fn()
            except BaseException as exc:
                if (not policy.classify(exc)
                        or attempt >= policy.max_attempts
                        or (deadline is not None
                            and self.clock() >= deadline)):
                    raise
                failure = exc
            with policy._lock:
                policy.retries += 1
            if policy._retries_metric is not None:
                policy._retries_metric.inc()
            self._retries.inc()
            delay = policy.backoff(attempt)
            hint = getattr(failure, "retry_after", 0.0)
            if hint:
                delay = max(delay, min(float(hint), policy.max_delay))
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - self.clock()))
            await asyncio.sleep(delay)
            attempt += 1

    async def _idempotent(self, fn):
        """Run a side-effect-free exchange under the retry policy."""
        if self.retry is None:
            return await self._counted(fn)
        return await self._retrying(lambda: self._counted(fn))

    # -- service queries -----------------------------------------------------

    async def ping(self) -> bool:
        """Liveness probe: True when the server answers PING."""
        try:
            await self._idempotent(
                lambda: self._roundtrip(MessageType.PING, b"",
                                        MessageType.PONG)
            )
            return True
        except (OSError, ProtocolError):
            return False

    async def list_functions(self) -> list[str]:
        """Names of every executable registered on the server."""
        reply = await self._idempotent(
            lambda: self._roundtrip(MessageType.LIST_REQUEST, b"",
                                    MessageType.LIST_REPLY)
        )
        dec = XdrDecoder(reply)
        return dec.unpack_array(dec.unpack_string)

    async def query_load(self) -> LoadReply:
        """The server-state snapshot the metaserver monitors."""
        reply = await self._idempotent(
            lambda: self._roundtrip(MessageType.LOAD_QUERY, b"",
                                    MessageType.LOAD_REPLY)
        )
        return LoadReply.decode(XdrDecoder(reply))

    async def get_signature(self, function: str) -> Signature:
        """Stage one of the two-stage RPC (cached per client)."""
        cached = self._signatures.get(function)
        if cached is not None:
            return cached
        enc = XdrEncoder()
        enc.pack_string(function)
        reply = await self._idempotent(
            lambda: self._roundtrip(MessageType.INTERFACE_REQUEST,
                                    enc.getvalue(),
                                    MessageType.INTERFACE_REPLY)
        )
        signature = Signature.from_wire(reply)
        self._signatures[function] = signature
        return signature

    # -- the call itself -----------------------------------------------------

    async def call(self, function: str, *args: Any,
                   on_callback: Optional[Callable[[float, str], None]] = None
                   ) -> list[Any]:
        """``Ninf_call``, awaitable: invoke ``function`` remotely.

        Output arrays passed by the caller are updated in place and
        outputs are returned in declaration order, exactly as in
        :meth:`NinfClient.call`.
        """
        outputs, _record = await self.call_with_record(
            function, *args, on_callback=on_callback)
        return outputs

    async def call_with_record(
        self, function: str, *args: Any,
        on_callback: Optional[Callable[[float, str], None]] = None,
        timeout: Optional[float] = None,
    ) -> tuple[list[Any], CallRecord]:
        """Like :meth:`call`, also returning the :class:`CallRecord`.

        Semantics (deadline budget on the wire header, span schema,
        ``retry_calls`` replaying the same logical id against the
        server's dedup cache) match
        :meth:`NinfClient.call_with_record` exactly.
        """
        signature = await self.get_signature(function)
        submit_time = self.clock()
        call_id = next(_call_ids)
        budget = self.call_budget if timeout is None else timeout
        deadline = None if budget is None else submit_time + budget
        logical_id = uuid.uuid4().hex
        attempt_ids = itertools.count(1)
        trace = self.tracer.trace(SPAN_ROOT, start=submit_time,
                                  function=function, call_id=call_id,
                                  source="live")

        async def attempt() -> bytes:
            remaining = 0.0
            if deadline is not None:
                remaining = max(0.001, deadline - self.clock())
            enc = XdrEncoder()
            CallHeader(function=function, call_id=call_id,
                       logical_id=logical_id,
                       attempt=next(attempt_ids),
                       budget=remaining).encode(enc)
            enc.pack_opaque(args_payload)
            self._attempts.inc()
            with trace.span(SPAN_CONNECT):
                channel = await self._pool.checkout(self.host, self.port)
            try:
                with trace.span(SPAN_SEND):
                    await channel.send(MessageType.CALL, enc.getbuffer())
                recv_start = self.clock()
                while True:
                    reply_type, reply = await channel.recv()
                    if reply_type == MessageType.CALLBACK:
                        dec = XdrDecoder(reply)
                        cb_call_id = dec.unpack_uhyper()
                        progress = dec.unpack_double()
                        message = dec.unpack_string()
                        dec.done()
                        if on_callback is not None and cb_call_id == call_id:
                            on_callback(progress, message)
                        continue
                    break
                trace.record(SPAN_RECV, recv_start, self.clock())
                if reply_type == MessageType.ERROR:
                    err = ErrorReply.decode(XdrDecoder(reply))
                    raise RemoteError(err.code, err.message)
                if reply_type == MessageType.BUSY:
                    busy = BusyReply.decode(XdrDecoder(reply))
                    raise ServerBusy(busy.reason,
                                     retry_after=busy.retry_after)
                if reply_type != MessageType.RESULT:
                    raise ProtocolError(
                        f"expected RESULT, got message {reply_type}"
                    )
            except BaseException as exc:
                if is_transient(exc) and not isinstance(exc, RemoteError):
                    self._faults_seen.inc()
                self._pool.discard(channel)
                raise
            self._pool.checkin(channel)
            return reply

        try:
            with trace.span(SPAN_MARSHAL):
                args_payload = marshal_inputs(signature, list(args))
            if self.retry is not None and self.retry_calls:
                reply = await self._retrying(attempt, deadline=deadline)
            else:
                reply = await attempt()
            with trace.span(SPAN_UNMARSHAL):
                dec = XdrDecoder(reply)
                reply_id = dec.unpack_uhyper()
                if reply_id != call_id:
                    raise ProtocolError(
                        f"result for call {reply_id}, expected {call_id}"
                    )
                timestamps = JobTimestamps.decode(dec)
                out_payload = dec.unpack_opaque_view()
                dec.done()
                outputs = unmarshal_outputs(signature, out_payload)
            trace.record(SPAN_QUEUE, timestamps.enqueue, timestamps.dequeue,
                         clock="server-wall")
            trace.record(SPAN_COMPUTE, timestamps.dequeue,
                         timestamps.complete, clock="server-wall")
            complete_time = self.clock()
        except BaseException:
            trace.end(at=self.clock(), status="error")
            raise
        self._write_back(signature, args, outputs)
        self._call_seconds.observe(complete_time - submit_time,
                                   function=function)
        trace.end(at=complete_time, status="ok")
        record = CallRecord(
            function=function,
            call_id=call_id,
            submit_time=submit_time,
            complete_time=complete_time,
            server=timestamps,
            input_bytes=len(args_payload),
            output_bytes=len(out_payload),
        )
        self.records.append(record)
        return outputs, record

    # -- two-phase RPC (§5.1) ------------------------------------------------

    async def call_detached(self, function: str, *args: Any,
                            timeout: Optional[float] = None) -> DetachedCall:
        """Phase one: upload arguments and get a ticket (see
        :meth:`NinfClient.call_detached`)."""
        signature = await self.get_signature(function)
        submit_time = self.clock()
        budget = self.call_budget if timeout is None else timeout
        deadline = None if budget is None else submit_time + budget
        args_payload = marshal_inputs(signature, list(args))
        call_id = next(_call_ids)
        logical_id = uuid.uuid4().hex
        attempt_ids = itertools.count(1)

        async def submit_once() -> bytes:
            remaining = 0.0
            if deadline is not None:
                remaining = max(0.001, deadline - self.clock())
            enc = XdrEncoder()
            CallHeader(function=function, call_id=call_id,
                       logical_id=logical_id, attempt=next(attempt_ids),
                       budget=remaining).encode(enc)
            enc.pack_opaque(args_payload)
            return await self._roundtrip(MessageType.CALL_DETACHED,
                                         enc.getbuffer(),
                                         MessageType.CALL_ACCEPTED)

        if self.retry is not None and self.retry_calls:
            reply = await self._retrying(
                lambda: self._counted(submit_once), deadline=deadline)
        else:
            reply = await submit_once()
        dec = XdrDecoder(reply)
        reply_id = dec.unpack_uhyper()
        ticket = dec.unpack_uhyper()
        dec.done()
        if reply_id != call_id:
            raise ProtocolError(f"accept for call {reply_id}, "
                                f"expected {call_id}")
        return DetachedCall(client=self, function=function, args=args,
                            signature=signature, ticket=ticket,
                            call_id=call_id, submit_time=submit_time,
                            input_bytes=len(args_payload))

    async def fetch_detached(self, call: DetachedCall,
                             timeout: Optional[float] = None,
                             poll_interval: float = 0.02) -> list[Any]:
        """Phase two: poll until the result is ready, then unmarshal
        and write back output arrays (see
        :meth:`NinfClient.fetch_detached`)."""
        deadline = None if timeout is None else self.clock() + timeout

        async def poll_once() -> tuple[int, bytes]:
            enc = XdrEncoder()
            enc.pack_uhyper(call.ticket)
            channel = await self._pool.checkout(self.host, self.port)
            try:
                await channel.send(MessageType.FETCH_RESULT, enc.getvalue())
                reply_type, reply = await channel.recv()
            except BaseException:
                self._pool.discard(channel)
                raise
            self._pool.checkin(channel)
            return reply_type, reply

        while True:
            reply_type, reply = await self._idempotent(poll_once)
            if reply_type == MessageType.ERROR:
                err = ErrorReply.decode(XdrDecoder(reply))
                raise RemoteError(err.code, err.message)
            if reply_type == MessageType.RESULT_PENDING:
                if deadline is not None and self.clock() >= deadline:
                    await self.cancel_detached(call)
                    raise TimeoutError(
                        f"detached call {call.function} (ticket "
                        f"{call.ticket}) still pending"
                    )
                await asyncio.sleep(poll_interval)
                continue
            if reply_type != MessageType.RESULT:
                raise ProtocolError(f"unexpected reply {reply_type} to fetch")
            dec = XdrDecoder(reply)
            ticket = dec.unpack_uhyper()
            if ticket != call.ticket:
                raise ProtocolError(
                    f"result for ticket {ticket}, expected {call.ticket}"
                )
            timestamps = JobTimestamps.decode(dec)
            out_payload = dec.unpack_opaque_view()
            dec.done()
            outputs = unmarshal_outputs(call.signature, out_payload)
            self._write_back(call.signature, call.args, outputs)
            record = CallRecord(
                function=call.function,
                call_id=call.call_id,
                submit_time=call.submit_time,
                complete_time=self.clock(),
                server=timestamps,
                input_bytes=call.input_bytes,
                output_bytes=len(out_payload),
            )
            call.record = record
            self.records.append(record)
            return outputs

    async def cancel_detached(self, call: DetachedCall) -> bool:
        """Ask the server to drop a still-queued detached call
        (best-effort and idempotent; see
        :meth:`NinfClient.cancel_detached`)."""
        enc = XdrEncoder()
        enc.pack_uhyper(call.ticket)
        try:
            reply = await self._roundtrip(MessageType.CANCEL, enc.getvalue(),
                                          MessageType.CANCEL_REPLY)
        except (OSError, ProtocolError, RemoteError):
            return False
        dec = XdrDecoder(reply)
        ticket = dec.unpack_uhyper()
        dropped = dec.unpack_bool()
        dec.done()
        return dropped and ticket == call.ticket

    @staticmethod
    def _write_back(signature: Signature, args, outputs: list[Any]) -> None:
        """In-place update of caller-provided output arrays."""
        from repro.client.api import NinfClient

        NinfClient._write_back(signature, args, outputs)
