"""Ninf client API.

"Ninf_call is a representative API used for invoking a named remote
library on the server as if it were on a local machine via Ninf RPC"
(paper §2.2).  The Python binding keeps the call-by-reference feel of
the C API: ``mode_out``/``mode_inout`` NumPy arrays passed by the caller
are filled in place, and results are also returned.

- :class:`NinfClient` -- connection to one computational server:
  :meth:`~NinfClient.call` (synchronous), :meth:`~NinfClient.call_async`
  (returns a :class:`NinfFuture`), signature cache, ping/load queries.
  By default a blocking facade over asyncio connections (DESIGN.md
  §3.6); ``transport="threads"`` restores the blocking-socket wire.
- :class:`AsyncNinfClient` -- the same client natively ``async``:
  ``await client.call(...)`` on the caller's event loop.
- :func:`ninf_call` / :func:`ninf_call_async` -- the paper's free-form
  API: ``ninf_call("ninf://host:port/dmmul", n, A, B, C)``.
- :class:`Transaction` -- ``Ninf_transaction_begin``/``end``: records
  calls, builds the argument dependency DAG, and executes independent
  calls in parallel across one or more servers (§2.4).
"""

from repro.client.aio import AsyncNinfClient
from repro.client.api import (
    DetachedCall,
    NinfClient,
    NinfFuture,
    ninf_call,
    ninf_call_async,
)
from repro.client.transaction import Transaction

__all__ = [
    "AsyncNinfClient",
    "DetachedCall",
    "NinfClient",
    "NinfFuture",
    "Transaction",
    "ninf_call",
    "ninf_call_async",
]
