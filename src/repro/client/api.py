"""Synchronous and asynchronous Ninf_call bindings."""

from __future__ import annotations

import itertools
import threading
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.idl import Signature
from repro.obs import MetricsRegistry, Tracer, names
from repro.obs.trace import (
    SPAN_COMPUTE,
    SPAN_CONNECT,
    SPAN_MARSHAL,
    SPAN_QUEUE,
    SPAN_RECV,
    SPAN_ROOT,
    SPAN_SEND,
    SPAN_UNMARSHAL,
)
from repro.protocol.errors import ProtocolError, RemoteError, ServerBusy
from repro.protocol.marshal import marshal_inputs, unmarshal_outputs
from repro.protocol.messages import (
    BusyReply,
    CallHeader,
    ErrorReply,
    JobTimestamps,
    LoadReply,
    MessageType,
)
from repro.transport import Channel, ConnectionPool, RetryPolicy, is_transient
from repro.xdr import XdrDecoder, XdrEncoder

__all__ = ["CallRecord", "DetachedCall", "NinfClient", "NinfFuture",
           "ninf_call", "ninf_call_async", "parse_ninf_url"]

_call_ids = itertools.count(1)


@dataclass(frozen=True)
class CallRecord:
    """Everything measured about one completed Ninf_call.

    Client-side times use the client clock; ``server`` times are the
    :class:`JobTimestamps` in the server clock.  ``response`` follows the
    paper's definition ``T_response = T_enqueue - T_submit`` -- with both
    endpoints on one host (the test/benchmark setting) the clocks agree.
    """

    function: str
    call_id: int
    submit_time: float
    complete_time: float
    server: JobTimestamps
    input_bytes: int
    output_bytes: int

    @property
    def elapsed(self) -> float:
        return self.complete_time - self.submit_time

    @property
    def response(self) -> float:
        return self.server.enqueue - self.submit_time

    @property
    def wait(self) -> float:
        return self.server.wait

    @property
    def comm_bytes(self) -> int:
        return self.input_bytes + self.output_bytes

    @property
    def throughput(self) -> float:
        """End-to-end bytes/second including marshalling, per Fig 5."""
        if self.elapsed <= 0:
            return float("inf")
        return self.comm_bytes / self.elapsed


class NinfFuture:
    """Result handle for :meth:`NinfClient.call_async`."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outputs: Optional[list[Any]] = None
        self._record: Optional[CallRecord] = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["NinfFuture"], None]] = []
        self._callbacks_lock = threading.Lock()

    def _fulfill(self, outputs: list[Any], record: CallRecord) -> None:
        self._outputs = outputs
        self._record = record
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._event.set()
        with self._callbacks_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, fn: Callable[["NinfFuture"], None]) -> None:
        """Run ``fn(self)`` on completion (immediately if already done).

        Callbacks fire on the call's worker thread, exactly once, for
        success and failure alike -- this is how ``ninf_call_async``
        closes its throwaway client's connection pool.
        """
        with self._callbacks_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until completion; False on timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> list[Any]:
        """Outputs in declaration order; raises what the call raised."""
        if not self._event.wait(timeout):
            raise TimeoutError("Ninf_call still in progress")
        if self._error is not None:
            raise self._error
        return self._outputs

    @property
    def record(self) -> CallRecord:
        if not self._event.is_set() or self._record is None:
            raise RuntimeError("call has not completed")
        return self._record


@dataclass
class DetachedCall:
    """Phase-one handle of a two-phase Ninf_call (§5.1)."""

    client: "NinfClient"
    function: str
    args: tuple
    signature: Signature
    ticket: int
    call_id: int
    submit_time: float
    input_bytes: int
    record: Optional[CallRecord] = None

    def fetch(self, timeout: Optional[float] = None) -> list[Any]:
        """Collect the result (see :meth:`NinfClient.fetch_detached`)."""
        return self.client.fetch_detached(self, timeout=timeout)


class NinfClient:
    """Client binding to one Ninf computational server.

    Parameters
    ----------
    timeout:
        Per-operation deadline (seconds) for every frame sent or
        received; expiry raises
        :class:`repro.protocol.errors.TimeoutError` instead of hanging
        on a half-dead peer.
    pool:
        ``True`` (default) keeps TCP connections alive across calls via
        a :class:`~repro.transport.ConnectionPool`; ``False``
        reproduces the paper's connection-per-call behaviour (the
        ablation the LAN benchmarks measure).
    max_idle:
        Seconds a pooled connection may sit idle before eviction.
    retry:
        A :class:`~repro.transport.RetryPolicy` applied to the client's
        *idempotent* operations (``ping``, ``get_signature``,
        ``list_functions``, ``query_load``, detached-result polling).
        By default ``CALL`` is not auto-retried: the server may have
        executed the routine even though the reply was lost, and
        at-most-once is the historical contract.
    retry_calls:
        Opt ``CALL``/``CALL_DETACHED`` into the retry policy too
        (DESIGN.md §3.5).  Safe against double execution because every
        logical call carries a UUID ``logical_id`` and the server's
        dedup cache replays the first attempt's result instead of
        recomputing; requires a v3 server.  No effect without
        ``retry``.
    call_budget:
        Default per-logical-call deadline budget in seconds, stamped
        on the CALL wire header so the server can shed or expire work
        the client will no longer wait for; ``None`` (default) sends
        no deadline.  Overridable per call via
        ``call_with_record(..., timeout=...)``.
    fault_plan:
        A :class:`~repro.transport.FaultPlan` injected into the
        connection pool -- every channel this client dials becomes a
        fault-injecting one (the chaos-test hook).
    metrics:
        The :class:`~repro.obs.MetricsRegistry` backing this client's
        counters and its pool/transport metrics.  Defaults to a fresh
        private registry, which is what gives the counters their exact
        per-client-lifetime semantics; pass a shared registry to
        aggregate several clients.
    tracer:
        A :class:`~repro.obs.Tracer`; when given, every
        :meth:`call_with_record` emits the OBSERVABILITY.md span
        schema (``ninf.call`` root + phase children) into it.  Its
        clock should agree with ``clock`` (both default to
        ``time.monotonic``).
    transport:
        ``"asyncio"`` (default) dials
        :class:`~repro.transport.AsyncChannel` connections on the
        process-wide client loop and wraps them in blocking
        :class:`~repro.transport.FacadeChannel` facades -- the wire
        behaviour, deadlines, and fault-injection draw sequences are
        identical to the threaded transport (DESIGN.md §3.6).
        ``"threads"`` keeps the historical blocking-socket
        :class:`~repro.transport.Channel`.  For a natively
        asynchronous API use :class:`~repro.client.AsyncNinfClient`.
    shm:
        Shared-memory same-host transport (PROTOCOL.md
        §"Shared-memory handshake"), ``transport="threads"`` only:
        ``None`` (default) auto-negotiates when the server host looks
        local and ``NINF_SHM`` does not opt out; ``False`` never
        negotiates; ``True`` always offers the handshake (the server
        may still refuse, leaving plain TCP).  The asyncio transport
        does not negotiate shm -- its ring polling would block the
        shared client loop -- so ``shm=True`` there is an error.

    The counters ``attempts``, ``retries``, and ``faults_seen`` track
    every transport exchange, its retries, and the transient errors
    observed, so experiments can report effective availability; see
    each property for its exact semantics.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0,
                 clock=None, pool: bool = True, max_idle: float = 60.0,
                 retry: Optional[RetryPolicy] = None, fault_plan=None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 retry_calls: bool = False,
                 call_budget: Optional[float] = None,
                 transport: str = "asyncio",
                 shm: Optional[bool] = None):
        import time

        if transport not in ("asyncio", "threads"):
            raise ValueError(f"transport must be 'asyncio' or 'threads', "
                             f"got {transport!r}")
        if shm is True and transport != "threads":
            raise ValueError(
                "shm=True requires transport='threads' (the asyncio "
                "transport does not negotiate shared memory)")
        self.shm = shm if transport == "threads" else False
        self.host = host
        self.port = port
        self.timeout = timeout
        self.clock = clock or time.monotonic
        self.retry = retry
        self.retry_calls = retry_calls
        self.call_budget = call_budget
        self.transport = transport
        self._signatures: dict[str, Signature] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if transport == "asyncio":
            # Same pool, different wire: every dial yields a
            # FacadeChannel over an AsyncChannel on the shared client
            # loop.  All call/retry/trace logic above the pool is
            # untouched -- the connector is the only transport seam.
            from repro.transport import facade_connect

            def _facade_connector(chost, cport, timeout=None,
                                  connect_timeout=None):
                return facade_connect(chost, cport, timeout=timeout,
                                      connect_timeout=connect_timeout,
                                      fault_plan=fault_plan)

            self._pool = ConnectionPool(timeout=timeout, pool=pool,
                                        max_idle_seconds=max_idle,
                                        connector=_facade_connector,
                                        metrics=self.metrics)
            # connector= and fault_plan= are mutually exclusive in the
            # pool ctor, so restore the plan attribute and its metrics
            # wiring by hand for chaos-test introspection parity.
            self._pool.fault_plan = fault_plan
            if fault_plan is not None and fault_plan.metrics is None:
                fault_plan.metrics = self.metrics
        else:
            self._pool = ConnectionPool(timeout=timeout, pool=pool,
                                        max_idle_seconds=max_idle,
                                        fault_plan=fault_plan,
                                        metrics=self.metrics,
                                        shm=self.shm)
        self.records: list[CallRecord] = []
        self._records_lock = threading.Lock()
        self._attempts = self.metrics.counter(
            names.CLIENT_ATTEMPTS,
            "Transport exchange attempts (idempotent ops and CALL)")
        self._retries = self.metrics.counter(
            names.CLIENT_RETRIES,
            "Retries taken by this client's idempotent operations")
        self._faults_seen = self.metrics.counter(
            names.CLIENT_FAULTS_SEEN,
            "Transient transport errors observed by this client")
        self._call_seconds = self.metrics.histogram(
            names.CLIENT_CALL_SECONDS,
            "End-to-end Ninf_call latency", labelnames=("function",))

    # -- observability --------------------------------------------------------

    @property
    def attempts(self) -> int:
        """Transport exchange attempts made by this client.

        Exact semantics: counts every exchange *started* -- each try of
        a retried idempotent operation (``ping``, ``get_signature``,
        ``list_functions``, ``query_load``, detached-result polling)
        and each try of a ``CALL``/``CALL_DETACHED`` (exactly one per
        call unless ``retry_calls`` opts CALL into the retry policy).
        Per-client lifetime: the count is monotonic from construction
        and is *not* reset by ``with`` blocks, :meth:`close`, or pool
        recycling.  Backed by ``ninf_client_attempts_total`` in
        :attr:`metrics`.
        """
        return int(self._attempts.value())

    @property
    def retries(self) -> int:
        """Retries taken by this client's retried operations.

        Incremented once per backoff-then-retry cycle of the
        :class:`~repro.transport.RetryPolicy` passed as ``retry``:
        always 0 when no policy is set, covers the idempotent
        operations, and covers ``CALL``/``CALL_DETACHED`` only when
        ``retry_calls`` is set (otherwise CALL stays at-most-once and
        never contributes).  Per-client lifetime, monotonic, never
        reset.  Backed by ``ninf_client_retries_total`` in
        :attr:`metrics`.
        """
        return int(self._retries.value())

    @property
    def faults_seen(self) -> int:
        """Transient transport errors this client has observed.

        Incremented when an exchange raises an error classified
        transient by :func:`~repro.transport.is_transient` *except*
        the server's own BUSY/shutdown replies (those are retryable but
        arrive on a healthy transport, so they are not faults), whether
        or not the operation was subsequently retried.  Per-client
        lifetime, monotonic, never reset.  Backed by
        ``ninf_client_faults_seen_total`` in :attr:`metrics`.
        """
        return int(self._faults_seen.value())

    def fetch_stats(self, fmt: str = "json"):
        """Fetch the *server's* metrics snapshot via the ``STATS`` op.

        ``fmt="json"`` returns the decoded snapshot dict
        (:meth:`~repro.obs.MetricsRegistry.snapshot` shape);
        ``fmt="prom"`` returns the Prometheus text exposition as a
        string.  The exchange is idempotent and rides the retry policy.
        """
        import json

        enc = XdrEncoder()
        enc.pack_string(fmt)
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.STATS, enc.getvalue(),
                                    MessageType.STATS_REPLY)
        )
        dec = XdrDecoder(reply)
        reply_fmt = dec.unpack_string()
        text = dec.unpack_string()
        dec.done()
        if reply_fmt == "json":
            return json.loads(text)
        return text

    # -- connection pool ------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether connections are kept alive across calls."""
        return self._pool.pooling

    def _connect(self) -> Channel:
        return self._pool.checkout(self.host, self.port)

    def _release(self, channel: Channel) -> None:
        self._pool.checkin(channel)

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "NinfClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- service queries -----------------------------------------------------------

    def _roundtrip(self, msg_type: int, payload: bytes, expect: int) -> bytes:
        """One pooled request/reply exchange; burns the channel on error."""
        with self._pool.lease(self.host, self.port) as channel:
            _reply_type, reply = channel.request(msg_type, payload,
                                                 expect=expect)
        return reply

    def _counted(self, fn):
        """Run one exchange attempt, tracking attempts and faults seen."""
        self._attempts.inc()
        try:
            return fn()
        except BaseException as exc:
            # Shed/shutdown replies are transient (retryable) but not
            # transport faults -- the wire worked fine.
            if is_transient(exc) and not isinstance(exc, RemoteError):
                self._faults_seen.inc()
            raise

    def _idempotent(self, fn):
        """Run a side-effect-free exchange under the retry policy."""
        if self.retry is None:
            return self._counted(fn)

        def on_retry(_attempt: int, _exc: BaseException) -> None:
            self._retries.inc()

        return self.retry.run(lambda: self._counted(fn), on_retry=on_retry)

    def ping(self) -> bool:
        """Liveness probe: True when the server answers PING."""
        try:
            self._idempotent(
                lambda: self._roundtrip(MessageType.PING, b"",
                                        MessageType.PONG)
            )
            return True
        except (OSError, ProtocolError):
            return False

    def list_functions(self) -> list[str]:
        """Names of every executable registered on the server."""
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.LIST_REQUEST, b"",
                                    MessageType.LIST_REPLY)
        )
        dec = XdrDecoder(reply)
        return dec.unpack_array(dec.unpack_string)

    def query_load(self) -> LoadReply:
        """The server-state snapshot the metaserver monitors."""
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.LOAD_QUERY, b"",
                                    MessageType.LOAD_REPLY)
        )
        return LoadReply.decode(XdrDecoder(reply))

    def get_signature(self, function: str) -> Signature:
        """Stage one of the two-stage RPC (cached per client)."""
        cached = self._signatures.get(function)
        if cached is not None:
            return cached
        enc = XdrEncoder()
        enc.pack_string(function)
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.INTERFACE_REQUEST,
                                    enc.getvalue(),
                                    MessageType.INTERFACE_REPLY)
        )
        signature = Signature.from_wire(reply)
        self._signatures[function] = signature
        return signature

    # -- the call itself ---------------------------------------------------------------

    def call(self, function: str, *args: Any,
             on_callback: Optional[Callable[[float, str], None]] = None
             ) -> list[Any]:
        """``Ninf_call``: invoke ``function`` remotely with ``args``.

        Output arrays passed by the caller are updated in place
        (call-by-reference semantics of the C API); outputs are also
        returned as a list in declaration order.  ``on_callback``
        receives ``(progress, message)`` events if the remote
        executable streams them (the IDL's client callback functions).
        """
        outputs, _record = self.call_with_record(function, *args,
                                                 on_callback=on_callback)
        return outputs

    def call_with_record(
        self, function: str, *args: Any,
        on_callback: Optional[Callable[[float, str], None]] = None,
        timeout: Optional[float] = None,
    ) -> tuple[list[Any], CallRecord]:
        """Like :meth:`call`, also returning the :class:`CallRecord`.

        When the client has an enabled :attr:`tracer`, the call emits
        the OBSERVABILITY.md span schema: a ``ninf.call`` root plus
        ``call.marshal`` / ``call.connect`` / ``call.send`` /
        ``call.recv`` / ``call.unmarshal`` children on the client clock
        and retrospective ``call.queue`` / ``call.compute`` children
        reconstructed from the server's :class:`JobTimestamps`
        (``clock="server-wall"``).

        ``timeout`` is this logical call's deadline budget (defaulting
        to the client's ``call_budget``): the remaining budget rides
        the wire header so the server can shed or expire the job, and
        it bounds the retry loop when ``retry_calls`` is enabled.  With
        ``retry_calls``, every attempt reuses the same ``call_id`` and
        ``logical_id`` (with an incremented attempt number), which is
        what lets the server's dedup cache replay a completed first
        attempt instead of recomputing.
        """
        signature = self.get_signature(function)
        submit_time = self.clock()
        call_id = next(_call_ids)
        budget = self.call_budget if timeout is None else timeout
        deadline = None if budget is None else submit_time + budget
        logical_id = uuid.uuid4().hex
        attempt_ids = itertools.count(1)
        trace = self.tracer.trace(SPAN_ROOT, start=submit_time,
                                  function=function, call_id=call_id,
                                  source="live")
        def attempt() -> bytes:
            """One wire attempt of the logical call; returns the RESULT
            payload.  Re-invoked by the retry policy (same logical id,
            fresh attempt number and re-computed remaining budget)."""
            remaining = 0.0
            if deadline is not None:
                remaining = max(0.001, deadline - self.clock())
            enc = XdrEncoder()
            CallHeader(function=function, call_id=call_id,
                       logical_id=logical_id,
                       attempt=next(attempt_ids),
                       budget=remaining).encode(enc)
            enc.pack_opaque(args_payload)
            self._attempts.inc()
            with trace.span(SPAN_CONNECT):
                channel = self._connect()
            try:
                with trace.span(SPAN_SEND):
                    channel.send(MessageType.CALL, enc.getbuffer())
                recv_start = self.clock()
                while True:
                    reply_type, reply = channel.recv()
                    if reply_type == MessageType.CALLBACK:
                        dec = XdrDecoder(reply)
                        cb_call_id = dec.unpack_uhyper()
                        progress = dec.unpack_double()
                        message = dec.unpack_string()
                        dec.done()
                        if on_callback is not None and cb_call_id == call_id:
                            on_callback(progress, message)
                        continue
                    break
                # The recv window covers server queueing + compute as
                # seen from the client; the breakdown derives transfer
                # as total - queue - compute, so the overlap is fine.
                trace.record(SPAN_RECV, recv_start, self.clock())
                if reply_type == MessageType.ERROR:
                    err = ErrorReply.decode(XdrDecoder(reply))
                    raise RemoteError(err.code, err.message)
                if reply_type == MessageType.BUSY:
                    busy = BusyReply.decode(XdrDecoder(reply))
                    raise ServerBusy(busy.reason,
                                     retry_after=busy.retry_after)
                if reply_type != MessageType.RESULT:
                    raise ProtocolError(
                        f"expected RESULT, got message {reply_type}"
                    )
            except BaseException as exc:
                if is_transient(exc) and not isinstance(exc, RemoteError):
                    self._faults_seen.inc()
                self._pool.discard(channel)
                raise
            self._release(channel)
            return reply

        try:
            with trace.span(SPAN_MARSHAL):
                args_payload = marshal_inputs(signature, list(args))
            if self.retry is not None and self.retry_calls:
                # Exactly-once: safe because the server dedups on
                # logical_id (DESIGN.md §3.5).
                reply = self.retry.run(
                    attempt,
                    on_retry=lambda _a, _e: self._retries.inc(),
                    deadline=deadline, clock=self.clock)
            else:
                # Historical at-most-once CALL: one shot only.
                reply = attempt()
            with trace.span(SPAN_UNMARSHAL):
                dec = XdrDecoder(reply)
                reply_id = dec.unpack_uhyper()
                if reply_id != call_id:
                    raise ProtocolError(
                        f"result for call {reply_id}, expected {call_id}"
                    )
                timestamps = JobTimestamps.decode(dec)
                out_payload = dec.unpack_opaque_view()
                dec.done()
                outputs = unmarshal_outputs(signature, out_payload)
            # Server-side phases, reconstructed from JobTimestamps.
            # Timestamps are in the server's clock ("server-wall"):
            # durations are comparable across clocks, absolute start/end
            # values are not (OBSERVABILITY.md, clock-injection rules).
            trace.record(SPAN_QUEUE, timestamps.enqueue, timestamps.dequeue,
                         clock="server-wall")
            trace.record(SPAN_COMPUTE, timestamps.dequeue,
                         timestamps.complete, clock="server-wall")
            complete_time = self.clock()
        except BaseException:
            trace.end(at=self.clock(), status="error")
            raise
        self._write_back(signature, args, outputs)
        self._call_seconds.observe(complete_time - submit_time,
                                   function=function)
        trace.end(at=complete_time, status="ok")
        record = CallRecord(
            function=function,
            call_id=call_id,
            submit_time=submit_time,
            complete_time=complete_time,
            server=timestamps,
            input_bytes=len(args_payload),
            output_bytes=len(out_payload),
        )
        with self._records_lock:
            self.records.append(record)
        return outputs, record

    # -- two-phase RPC (§5.1) ------------------------------------------------

    def call_detached(self, function: str, *args: Any,
                      timeout: Optional[float] = None) -> "DetachedCall":
        """Phase one: upload arguments and get a ticket; no connection is
        held while the server computes ("remote argument transfer takes
        place in the first phase, whereupon the communication is
        terminated").

        ``timeout`` (default: the client's ``call_budget``) rides the
        wire header as the deadline budget; a retried submission (with
        ``retry_calls``) replays the same logical id, so a lost
        CALL_ACCEPTED yields the original ticket rather than a second
        queued job.
        """
        signature = self.get_signature(function)
        submit_time = self.clock()
        budget = self.call_budget if timeout is None else timeout
        deadline = None if budget is None else submit_time + budget
        args_payload = marshal_inputs(signature, list(args))
        call_id = next(_call_ids)
        logical_id = uuid.uuid4().hex
        attempt_ids = itertools.count(1)

        def submit_once() -> bytes:
            remaining = 0.0
            if deadline is not None:
                remaining = max(0.001, deadline - self.clock())
            enc = XdrEncoder()
            CallHeader(function=function, call_id=call_id,
                       logical_id=logical_id, attempt=next(attempt_ids),
                       budget=remaining).encode(enc)
            enc.pack_opaque(args_payload)
            return self._roundtrip(MessageType.CALL_DETACHED, enc.getbuffer(),
                                   MessageType.CALL_ACCEPTED)

        if self.retry is not None and self.retry_calls:
            reply = self.retry.run(
                lambda: self._counted(submit_once),
                on_retry=lambda _a, _e: self._retries.inc(),
                deadline=deadline, clock=self.clock)
        else:
            reply = submit_once()
        dec = XdrDecoder(reply)
        reply_id = dec.unpack_uhyper()
        ticket = dec.unpack_uhyper()
        dec.done()
        if reply_id != call_id:
            raise ProtocolError(f"accept for call {reply_id}, "
                                f"expected {call_id}")
        return DetachedCall(client=self, function=function, args=args,
                            signature=signature, ticket=ticket,
                            call_id=call_id, submit_time=submit_time,
                            input_bytes=len(args_payload))

    def fetch_detached(self, call: "DetachedCall",
                       timeout: Optional[float] = None,
                       poll_interval: float = 0.02) -> list[Any]:
        """Phase two: poll (over pooled connections) until the result is
        ready, then unmarshal and write back output arrays."""
        import time as _time

        deadline = None if timeout is None else self.clock() + timeout

        def poll_once() -> tuple[int, bytes]:
            enc = XdrEncoder()
            enc.pack_uhyper(call.ticket)
            channel = self._connect()
            try:
                channel.send(MessageType.FETCH_RESULT, enc.getvalue())
                reply_type, reply = channel.recv()
            except BaseException:
                self._pool.discard(channel)
                raise
            self._release(channel)
            return reply_type, reply

        while True:
            # Fetching by ticket is idempotent: the server keeps the
            # result until it is collected, so retry is safe here.
            reply_type, reply = self._idempotent(poll_once)
            if reply_type == MessageType.ERROR:
                err = ErrorReply.decode(XdrDecoder(reply))
                raise RemoteError(err.code, err.message)
            if reply_type == MessageType.RESULT_PENDING:
                if deadline is not None and self.clock() >= deadline:
                    # Deadline expired: tell the server to drop the job
                    # if it is still queued (best-effort) — no point
                    # computing a result nobody will fetch.
                    self.cancel_detached(call)
                    raise TimeoutError(
                        f"detached call {call.function} (ticket "
                        f"{call.ticket}) still pending"
                    )
                _time.sleep(poll_interval)
                continue
            if reply_type != MessageType.RESULT:
                raise ProtocolError(f"unexpected reply {reply_type} to fetch")
            dec = XdrDecoder(reply)
            ticket = dec.unpack_uhyper()
            if ticket != call.ticket:
                raise ProtocolError(
                    f"result for ticket {ticket}, expected {call.ticket}"
                )
            timestamps = JobTimestamps.decode(dec)
            out_payload = dec.unpack_opaque_view()
            dec.done()
            outputs = unmarshal_outputs(call.signature, out_payload)
            self._write_back(call.signature, call.args, outputs)
            record = CallRecord(
                function=call.function,
                call_id=call.call_id,
                submit_time=call.submit_time,
                complete_time=self.clock(),
                server=timestamps,
                input_bytes=call.input_bytes,
                output_bytes=len(out_payload),
            )
            call.record = record
            with self._records_lock:
                self.records.append(record)
            return outputs

    def cancel_detached(self, call: "DetachedCall") -> bool:
        """Ask the server to drop a still-queued detached call.

        Best-effort and idempotent: returns ``True`` when the server
        confirms it dropped the queued job (counted server-side in
        ``ninf_server_jobs_cancelled_total``), ``False`` when the job
        already ran, the ticket is unknown, or the server is
        unreachable.  Running jobs are never interrupted.
        """
        enc = XdrEncoder()
        enc.pack_uhyper(call.ticket)
        try:
            reply = self._roundtrip(MessageType.CANCEL, enc.getvalue(),
                                    MessageType.CANCEL_REPLY)
        except (OSError, ProtocolError, RemoteError):
            return False
        dec = XdrDecoder(reply)
        ticket = dec.unpack_uhyper()
        dropped = dec.unpack_bool()
        dec.done()
        return dropped and ticket == call.ticket

    def call_async(self, function: str, *args: Any) -> NinfFuture:
        """``Ninf_call_async``: immediately returns a :class:`NinfFuture`."""
        future = NinfFuture()

        def runner() -> None:
            try:
                outputs, record = self.call_with_record(function, *args)
            except BaseException as exc:
                future._fail(exc)
            else:
                future._fulfill(outputs, record)

        thread = threading.Thread(target=runner, daemon=True,
                                  name=f"ninf-call-{function}")
        thread.start()
        return future

    @staticmethod
    def _write_back(signature: Signature, args: Sequence[Any],
                    outputs: list[Any]) -> None:
        """In-place update of caller-provided output arrays."""
        out_iter = iter(outputs)
        for spec, arg in zip(signature.args, args):
            if not spec.is_output:
                continue
            value = next(out_iter)
            if spec.is_array and isinstance(arg, np.ndarray):
                if arg.shape == value.shape:
                    np.copyto(arg, value, casting="unsafe")

    def transaction(self, peers: Optional[list["NinfClient"]] = None):
        """``Ninf_transaction_begin``: see :class:`~repro.client.Transaction`."""
        from repro.client.transaction import Transaction

        return Transaction([self] + (peers or []))


def parse_ninf_url(url: str) -> tuple[str, int, str]:
    """Split ``ninf://host:port/function`` (scheme optional)."""
    rest = url
    if "://" in rest:
        scheme, rest = rest.split("://", 1)
        if scheme not in ("ninf", "http"):
            raise ValueError(f"unsupported URL scheme {scheme!r}")
    if "/" not in rest:
        raise ValueError(f"Ninf URL needs host:port/function, got {url!r}")
    authority, function = rest.split("/", 1)
    if ":" not in authority:
        raise ValueError(f"Ninf URL needs an explicit port: {url!r}")
    host, port_text = authority.rsplit(":", 1)
    if not function:
        raise ValueError(f"Ninf URL missing function name: {url!r}")
    return host, int(port_text), function


def ninf_call(url: str, *args: Any) -> list[Any]:
    """The paper's free-form API: ``Ninf_call("ninf://host:port/f", ...)``.

    Opens a throwaway client; for repeated calls prefer
    :class:`NinfClient` (signature cache + connection pool).
    """
    host, port, function = parse_ninf_url(url)
    with NinfClient(host, port) as client:
        return client.call(function, *args)


def ninf_call_async(url: str, *args: Any) -> NinfFuture:
    """Asynchronous variant of :func:`ninf_call`.

    The throwaway client's connection pool is closed when the future
    completes (success or failure), so fire-and-forget callers do not
    leak a pooled TCP connection per call.
    """
    host, port, function = parse_ninf_url(url)
    client = NinfClient(host, port)
    future = client.call_async(function, *args)
    future.add_done_callback(lambda _future: client.close())
    return future
