"""Synchronous and asynchronous Ninf_call bindings."""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.idl import Signature
from repro.protocol.errors import ProtocolError, RemoteError
from repro.protocol.marshal import marshal_inputs, unmarshal_outputs
from repro.protocol.messages import (
    CallHeader,
    ErrorReply,
    JobTimestamps,
    LoadReply,
    MessageType,
)
from repro.transport import Channel, ConnectionPool, RetryPolicy, is_transient
from repro.xdr import XdrDecoder, XdrEncoder

__all__ = ["CallRecord", "DetachedCall", "NinfClient", "NinfFuture",
           "ninf_call", "ninf_call_async", "parse_ninf_url"]

_call_ids = itertools.count(1)


@dataclass(frozen=True)
class CallRecord:
    """Everything measured about one completed Ninf_call.

    Client-side times use the client clock; ``server`` times are the
    :class:`JobTimestamps` in the server clock.  ``response`` follows the
    paper's definition ``T_response = T_enqueue - T_submit`` -- with both
    endpoints on one host (the test/benchmark setting) the clocks agree.
    """

    function: str
    call_id: int
    submit_time: float
    complete_time: float
    server: JobTimestamps
    input_bytes: int
    output_bytes: int

    @property
    def elapsed(self) -> float:
        return self.complete_time - self.submit_time

    @property
    def response(self) -> float:
        return self.server.enqueue - self.submit_time

    @property
    def wait(self) -> float:
        return self.server.wait

    @property
    def comm_bytes(self) -> int:
        return self.input_bytes + self.output_bytes

    @property
    def throughput(self) -> float:
        """End-to-end bytes/second including marshalling, per Fig 5."""
        if self.elapsed <= 0:
            return float("inf")
        return self.comm_bytes / self.elapsed


class NinfFuture:
    """Result handle for :meth:`NinfClient.call_async`."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outputs: Optional[list[Any]] = None
        self._record: Optional[CallRecord] = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["NinfFuture"], None]] = []
        self._callbacks_lock = threading.Lock()

    def _fulfill(self, outputs: list[Any], record: CallRecord) -> None:
        self._outputs = outputs
        self._record = record
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._event.set()
        with self._callbacks_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, fn: Callable[["NinfFuture"], None]) -> None:
        """Run ``fn(self)`` on completion (immediately if already done).

        Callbacks fire on the call's worker thread, exactly once, for
        success and failure alike -- this is how ``ninf_call_async``
        closes its throwaway client's connection pool.
        """
        with self._callbacks_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until completion; False on timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> list[Any]:
        """Outputs in declaration order; raises what the call raised."""
        if not self._event.wait(timeout):
            raise TimeoutError("Ninf_call still in progress")
        if self._error is not None:
            raise self._error
        return self._outputs

    @property
    def record(self) -> CallRecord:
        if not self._event.is_set() or self._record is None:
            raise RuntimeError("call has not completed")
        return self._record


@dataclass
class DetachedCall:
    """Phase-one handle of a two-phase Ninf_call (§5.1)."""

    client: "NinfClient"
    function: str
    args: tuple
    signature: Signature
    ticket: int
    call_id: int
    submit_time: float
    input_bytes: int
    record: Optional[CallRecord] = None

    def fetch(self, timeout: Optional[float] = None) -> list[Any]:
        """Collect the result (see :meth:`NinfClient.fetch_detached`)."""
        return self.client.fetch_detached(self, timeout=timeout)


class NinfClient:
    """Client binding to one Ninf computational server.

    Parameters
    ----------
    timeout:
        Per-operation deadline (seconds) for every frame sent or
        received; expiry raises
        :class:`repro.protocol.errors.TimeoutError` instead of hanging
        on a half-dead peer.
    pool:
        ``True`` (default) keeps TCP connections alive across calls via
        a :class:`~repro.transport.ConnectionPool`; ``False``
        reproduces the paper's connection-per-call behaviour (the
        ablation the LAN benchmarks measure).
    max_idle:
        Seconds a pooled connection may sit idle before eviction.
    retry:
        A :class:`~repro.transport.RetryPolicy` applied to the client's
        *idempotent* operations only (``ping``, ``get_signature``,
        ``list_functions``, ``query_load``, detached-result polling).
        ``CALL`` is never auto-retried: the server may have executed
        the routine even though the reply was lost, and at-most-once is
        the contract (fault tolerance for calls belongs to
        :class:`~repro.client.Transaction` migration).
    fault_plan:
        A :class:`~repro.transport.FaultPlan` injected into the
        connection pool -- every channel this client dials becomes a
        fault-injecting one (the chaos-test hook).

    The counters ``attempts``, ``retries``, and ``faults_seen`` track
    every transport exchange, its retries, and the transient errors
    observed, so experiments can report effective availability.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0,
                 clock=None, pool: bool = True, max_idle: float = 60.0,
                 retry: Optional[RetryPolicy] = None, fault_plan=None):
        import time

        self.host = host
        self.port = port
        self.timeout = timeout
        self.clock = clock or time.monotonic
        self.retry = retry
        self._signatures: dict[str, Signature] = {}
        self._pool = ConnectionPool(timeout=timeout, pool=pool,
                                    max_idle_seconds=max_idle,
                                    fault_plan=fault_plan)
        self.records: list[CallRecord] = []
        self._records_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.attempts = 0
        self.retries = 0
        self.faults_seen = 0

    # -- connection pool ------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether connections are kept alive across calls."""
        return self._pool.pooling

    def _connect(self) -> Channel:
        return self._pool.checkout(self.host, self.port)

    def _release(self, channel: Channel) -> None:
        self._pool.checkin(channel)

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "NinfClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- service queries -----------------------------------------------------------

    def _roundtrip(self, msg_type: int, payload: bytes, expect: int) -> bytes:
        """One pooled request/reply exchange; burns the channel on error."""
        with self._pool.lease(self.host, self.port) as channel:
            _reply_type, reply = channel.request(msg_type, payload,
                                                 expect=expect)
        return reply

    def _counted(self, fn):
        """Run one exchange attempt, tracking attempts and faults seen."""
        with self._counter_lock:
            self.attempts += 1
        try:
            return fn()
        except BaseException as exc:
            if is_transient(exc):
                with self._counter_lock:
                    self.faults_seen += 1
            raise

    def _idempotent(self, fn):
        """Run a side-effect-free exchange under the retry policy."""
        if self.retry is None:
            return self._counted(fn)

        def on_retry(_attempt: int, _exc: BaseException) -> None:
            with self._counter_lock:
                self.retries += 1

        return self.retry.run(lambda: self._counted(fn), on_retry=on_retry)

    def ping(self) -> bool:
        """Liveness probe: True when the server answers PING."""
        try:
            self._idempotent(
                lambda: self._roundtrip(MessageType.PING, b"",
                                        MessageType.PONG)
            )
            return True
        except (OSError, ProtocolError):
            return False

    def list_functions(self) -> list[str]:
        """Names of every executable registered on the server."""
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.LIST_REQUEST, b"",
                                    MessageType.LIST_REPLY)
        )
        dec = XdrDecoder(reply)
        return dec.unpack_array(dec.unpack_string)

    def query_load(self) -> LoadReply:
        """The server-state snapshot the metaserver monitors."""
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.LOAD_QUERY, b"",
                                    MessageType.LOAD_REPLY)
        )
        return LoadReply.decode(XdrDecoder(reply))

    def get_signature(self, function: str) -> Signature:
        """Stage one of the two-stage RPC (cached per client)."""
        cached = self._signatures.get(function)
        if cached is not None:
            return cached
        enc = XdrEncoder()
        enc.pack_string(function)
        reply = self._idempotent(
            lambda: self._roundtrip(MessageType.INTERFACE_REQUEST,
                                    enc.getvalue(),
                                    MessageType.INTERFACE_REPLY)
        )
        signature = Signature.from_wire(reply)
        self._signatures[function] = signature
        return signature

    # -- the call itself ---------------------------------------------------------------

    def call(self, function: str, *args: Any,
             on_callback: Optional[Callable[[float, str], None]] = None
             ) -> list[Any]:
        """``Ninf_call``: invoke ``function`` remotely with ``args``.

        Output arrays passed by the caller are updated in place
        (call-by-reference semantics of the C API); outputs are also
        returned as a list in declaration order.  ``on_callback``
        receives ``(progress, message)`` events if the remote
        executable streams them (the IDL's client callback functions).
        """
        outputs, _record = self.call_with_record(function, *args,
                                                 on_callback=on_callback)
        return outputs

    def call_with_record(
        self, function: str, *args: Any,
        on_callback: Optional[Callable[[float, str], None]] = None,
    ) -> tuple[list[Any], CallRecord]:
        """Like :meth:`call`, also returning the :class:`CallRecord`."""
        signature = self.get_signature(function)
        submit_time = self.clock()
        args_payload = marshal_inputs(signature, list(args))
        call_id = next(_call_ids)
        enc = XdrEncoder()
        CallHeader(function=function, call_id=call_id).encode(enc)
        enc.pack_opaque(args_payload)
        # CALL is counted but never auto-retried (not idempotent).
        with self._counter_lock:
            self.attempts += 1
        channel = self._connect()
        try:
            channel.send(MessageType.CALL, enc.getvalue())
            while True:
                reply_type, reply = channel.recv()
                if reply_type == MessageType.CALLBACK:
                    dec = XdrDecoder(reply)
                    cb_call_id = dec.unpack_uhyper()
                    progress = dec.unpack_double()
                    message = dec.unpack_string()
                    dec.done()
                    if on_callback is not None and cb_call_id == call_id:
                        on_callback(progress, message)
                    continue
                break
            if reply_type == MessageType.ERROR:
                err = ErrorReply.decode(XdrDecoder(reply))
                raise RemoteError(err.code, err.message)
            if reply_type != MessageType.RESULT:
                raise ProtocolError(
                    f"expected RESULT, got message {reply_type}"
                )
        except BaseException as exc:
            if is_transient(exc):
                with self._counter_lock:
                    self.faults_seen += 1
            self._pool.discard(channel)
            raise
        self._release(channel)
        dec = XdrDecoder(reply)
        reply_id = dec.unpack_uhyper()
        if reply_id != call_id:
            raise ProtocolError(
                f"result for call {reply_id}, expected {call_id}"
            )
        timestamps = JobTimestamps.decode(dec)
        out_payload = dec.unpack_opaque()
        dec.done()
        outputs = unmarshal_outputs(signature, out_payload)
        complete_time = self.clock()
        self._write_back(signature, args, outputs)
        record = CallRecord(
            function=function,
            call_id=call_id,
            submit_time=submit_time,
            complete_time=complete_time,
            server=timestamps,
            input_bytes=len(args_payload),
            output_bytes=len(out_payload),
        )
        with self._records_lock:
            self.records.append(record)
        return outputs, record

    # -- two-phase RPC (§5.1) ------------------------------------------------

    def call_detached(self, function: str, *args: Any) -> "DetachedCall":
        """Phase one: upload arguments and get a ticket; no connection is
        held while the server computes ("remote argument transfer takes
        place in the first phase, whereupon the communication is
        terminated").
        """
        signature = self.get_signature(function)
        submit_time = self.clock()
        args_payload = marshal_inputs(signature, list(args))
        call_id = next(_call_ids)
        enc = XdrEncoder()
        CallHeader(function=function, call_id=call_id).encode(enc)
        enc.pack_opaque(args_payload)
        reply = self._roundtrip(MessageType.CALL_DETACHED, enc.getvalue(),
                                MessageType.CALL_ACCEPTED)
        dec = XdrDecoder(reply)
        reply_id = dec.unpack_uhyper()
        ticket = dec.unpack_uhyper()
        dec.done()
        if reply_id != call_id:
            raise ProtocolError(f"accept for call {reply_id}, "
                                f"expected {call_id}")
        return DetachedCall(client=self, function=function, args=args,
                            signature=signature, ticket=ticket,
                            call_id=call_id, submit_time=submit_time,
                            input_bytes=len(args_payload))

    def fetch_detached(self, call: "DetachedCall",
                       timeout: Optional[float] = None,
                       poll_interval: float = 0.02) -> list[Any]:
        """Phase two: poll (over pooled connections) until the result is
        ready, then unmarshal and write back output arrays."""
        import time as _time

        deadline = None if timeout is None else self.clock() + timeout

        def poll_once() -> tuple[int, bytes]:
            enc = XdrEncoder()
            enc.pack_uhyper(call.ticket)
            channel = self._connect()
            try:
                channel.send(MessageType.FETCH_RESULT, enc.getvalue())
                reply_type, reply = channel.recv()
            except BaseException:
                self._pool.discard(channel)
                raise
            self._release(channel)
            return reply_type, reply

        while True:
            # Fetching by ticket is idempotent: the server keeps the
            # result until it is collected, so retry is safe here.
            reply_type, reply = self._idempotent(poll_once)
            if reply_type == MessageType.ERROR:
                err = ErrorReply.decode(XdrDecoder(reply))
                raise RemoteError(err.code, err.message)
            if reply_type == MessageType.RESULT_PENDING:
                if deadline is not None and self.clock() >= deadline:
                    raise TimeoutError(
                        f"detached call {call.function} (ticket "
                        f"{call.ticket}) still pending"
                    )
                _time.sleep(poll_interval)
                continue
            if reply_type != MessageType.RESULT:
                raise ProtocolError(f"unexpected reply {reply_type} to fetch")
            dec = XdrDecoder(reply)
            ticket = dec.unpack_uhyper()
            if ticket != call.ticket:
                raise ProtocolError(
                    f"result for ticket {ticket}, expected {call.ticket}"
                )
            timestamps = JobTimestamps.decode(dec)
            out_payload = dec.unpack_opaque()
            dec.done()
            outputs = unmarshal_outputs(call.signature, out_payload)
            self._write_back(call.signature, call.args, outputs)
            record = CallRecord(
                function=call.function,
                call_id=call.call_id,
                submit_time=call.submit_time,
                complete_time=self.clock(),
                server=timestamps,
                input_bytes=call.input_bytes,
                output_bytes=len(out_payload),
            )
            call.record = record
            with self._records_lock:
                self.records.append(record)
            return outputs

    def call_async(self, function: str, *args: Any) -> NinfFuture:
        """``Ninf_call_async``: immediately returns a :class:`NinfFuture`."""
        future = NinfFuture()

        def runner() -> None:
            try:
                outputs, record = self.call_with_record(function, *args)
            except BaseException as exc:
                future._fail(exc)
            else:
                future._fulfill(outputs, record)

        thread = threading.Thread(target=runner, daemon=True,
                                  name=f"ninf-call-{function}")
        thread.start()
        return future

    @staticmethod
    def _write_back(signature: Signature, args: Sequence[Any],
                    outputs: list[Any]) -> None:
        """In-place update of caller-provided output arrays."""
        out_iter = iter(outputs)
        for spec, arg in zip(signature.args, args):
            if not spec.is_output:
                continue
            value = next(out_iter)
            if spec.is_array and isinstance(arg, np.ndarray):
                if arg.shape == value.shape:
                    np.copyto(arg, value, casting="unsafe")

    def transaction(self, peers: Optional[list["NinfClient"]] = None):
        """``Ninf_transaction_begin``: see :class:`~repro.client.Transaction`."""
        from repro.client.transaction import Transaction

        return Transaction([self] + (peers or []))


def parse_ninf_url(url: str) -> tuple[str, int, str]:
    """Split ``ninf://host:port/function`` (scheme optional)."""
    rest = url
    if "://" in rest:
        scheme, rest = rest.split("://", 1)
        if scheme not in ("ninf", "http"):
            raise ValueError(f"unsupported URL scheme {scheme!r}")
    if "/" not in rest:
        raise ValueError(f"Ninf URL needs host:port/function, got {url!r}")
    authority, function = rest.split("/", 1)
    if ":" not in authority:
        raise ValueError(f"Ninf URL needs an explicit port: {url!r}")
    host, port_text = authority.rsplit(":", 1)
    if not function:
        raise ValueError(f"Ninf URL missing function name: {url!r}")
    return host, int(port_text), function


def ninf_call(url: str, *args: Any) -> list[Any]:
    """The paper's free-form API: ``Ninf_call("ninf://host:port/f", ...)``.

    Opens a throwaway client; for repeated calls prefer
    :class:`NinfClient` (signature cache + connection pool).
    """
    host, port, function = parse_ninf_url(url)
    with NinfClient(host, port) as client:
        return client.call(function, *args)


def ninf_call_async(url: str, *args: Any) -> NinfFuture:
    """Asynchronous variant of :func:`ninf_call`.

    The throwaway client's connection pool is closed when the future
    completes (success or failure), so fire-and-forget callers do not
    leak a pooled TCP connection per call.
    """
    host, port, function = parse_ninf_url(url)
    client = NinfClient(host, port)
    future = client.call_async(function, *args)
    future.add_done_callback(lambda _future: client.close())
    return future
