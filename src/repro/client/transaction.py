"""Ninf transactions: dependency-driven parallel execution of calls.

Paper §2.4: "The block of code surrounded by Ninf_transaction_begin and
Ninf_transaction_end are not executed immediately; rather,
data-dependency graph of the Ninf_call arguments are dynamically
created, and at the end of the code block, the metaserver schedules the
computation to multiple computational servers accordingly."

Dependencies are discovered from argument identity: if an array object
that call *i* writes (``mode_out``/``mode_inout``) is read by a later
call *j*, then *j* depends on *i*.  Writes also order against earlier
reads and writes of the same object (anti/output dependencies), which
is required for in-place semantics.

Independent calls run concurrently, distributed over the transaction's
servers; the Fig 11 EP experiment is exactly this pattern::

    with client.transaction(peers=[...]) as txn:
        for i in range(p):
            txn.call("ep", m, i * q, q, ...)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.protocol.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.client.api import NinfClient, NinfFuture

__all__ = ["Transaction", "TransactionCall", "TransactionError"]


class TransactionError(RuntimeError):
    """One or more calls inside the transaction failed."""

    def __init__(self, failures: list[tuple["TransactionCall", BaseException]]):
        summary = "; ".join(f"{c.function}: {e}" for c, e in failures)
        super().__init__(f"{len(failures)} transaction call(s) failed: {summary}")
        self.failures = failures


@dataclass
class TransactionCall:
    """A recorded, not-yet-executed Ninf_call."""

    index: int
    function: str
    args: tuple[Any, ...]
    depends_on: set[int] = field(default_factory=set)
    future: Optional["NinfFuture"] = None
    outputs: Optional[list[Any]] = None
    error: Optional[BaseException] = None
    server: Optional["NinfClient"] = None

    def result(self) -> list[Any]:
        """Outputs of the executed call; raises its failure if any."""
        if self.error is not None:
            raise self.error
        if self.outputs is None:
            raise RuntimeError("transaction has not been executed")
        return self.outputs


class Transaction:
    """Records calls, then executes the dependency DAG at exit.

    ``retries`` is the fault-tolerance knob the paper attributes to the
    metaserver ("parallel, fault-tolerant execution of multiple sequence
    of Ninf_calls"): a call that fails with a *transport* error (server
    died, connection reset) is retried on a different server up to
    ``retries`` times.  Execution errors (the remote routine raised) are
    not retried -- they are deterministic.
    """

    TRANSIENT_ERRORS = (OSError, ProtocolError)

    def __init__(self, servers: list["NinfClient"], retries: int = 1):
        if not servers:
            raise ValueError("a transaction needs at least one server")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.servers = servers
        self.retries = retries
        self.calls: list[TransactionCall] = []
        self._entered = False
        self._executed = False

    # -- recording --------------------------------------------------------

    def call(self, function: str, *args: Any) -> TransactionCall:
        """Record a deferred Ninf_call; returns its handle."""
        if self._executed:
            raise RuntimeError("transaction already executed")
        record = TransactionCall(index=len(self.calls), function=function,
                                 args=args)
        self._discover_dependencies(record)
        self.calls.append(record)
        return record

    def _discover_dependencies(self, record: TransactionCall) -> None:
        signature = self.servers[0].get_signature(record.function)
        if len(record.args) != len(signature.args):
            from repro.idl import IdlError

            raise IdlError(
                f"{record.function} expects {len(signature.args)} arguments, "
                f"got {len(record.args)}"
            )
        reads, writes = _classify(signature, record.args)
        for earlier in self.calls:
            earlier_sig = self.servers[0].get_signature(earlier.function)
            earlier_reads, earlier_writes = _classify(earlier_sig, earlier.args)
            # True dependency: we read what it writes.
            # Anti dependency: we write what it reads.
            # Output dependency: we write what it writes.
            if (_overlap(reads, earlier_writes)
                    or _overlap(writes, earlier_reads)
                    or _overlap(writes, earlier_writes)):
                record.depends_on.add(earlier.index)

    # -- execution ----------------------------------------------------------

    def __enter__(self) -> "Transaction":
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.execute()

    def execute(self) -> list[TransactionCall]:
        """Run the DAG: each call starts when its dependencies finish.

        Scheduling is least-outstanding-first across the transaction's
        servers (the metaserver's load-balancing role).  Raises
        :class:`TransactionError` if any call fails; successful calls'
        outputs remain available either way.
        """
        if self._executed:
            raise RuntimeError("transaction already executed")
        self._executed = True
        remaining = {c.index for c in self.calls}
        completed: set[int] = set()
        failures: list[tuple[TransactionCall, BaseException]] = []
        outstanding: dict[int, int] = {i: 0 for i in range(len(self.servers))}
        # Reentrant: launch() runs while the scheduling loop holds the
        # condition, and waiter threads take it independently.
        progress = threading.Condition(threading.RLock())
        in_flight: dict[int, TransactionCall] = {}

        def launch(call: TransactionCall) -> None:
            in_flight[call.index] = call

            def attempt_once(tried: set[int]) -> tuple[int, "NinfFuture"]:
                with progress:
                    candidates = [i for i in range(len(self.servers))
                                  if i not in tried]
                    if not candidates:
                        candidates = list(range(len(self.servers)))
                    server_index = min(candidates,
                                       key=lambda i: (outstanding[i], i))
                    outstanding[server_index] += 1
                call.server = self.servers[server_index]
                future = call.server.call_async(call.function, *call.args)
                call.future = future
                return server_index, future

            def waiter() -> None:
                tried: set[int] = set()
                attempts_left = self.retries
                while True:
                    server_index, future = attempt_once(tried)
                    transient: Optional[BaseException] = None
                    try:
                        call.outputs = future.result()
                    except self.TRANSIENT_ERRORS as exc:
                        transient = exc
                    except BaseException as exc:
                        call.error = exc
                    with progress:
                        outstanding[server_index] -= 1
                        if transient is not None and attempts_left > 0:
                            tried.add(server_index)
                            attempts_left -= 1
                            retry = True
                        else:
                            if transient is not None:
                                call.error = transient
                            completed.add(call.index)
                            progress.notify_all()
                            retry = False
                    if not retry:
                        return

            threading.Thread(target=waiter, daemon=True,
                             name=f"txn-wait-{call.index}").start()

        with progress:
            while remaining or in_flight:
                ready = [
                    self.calls[i] for i in sorted(remaining)
                    if self.calls[i].depends_on <= completed
                    and not any(self.calls[d].error is not None
                                for d in self.calls[i].depends_on)
                ]
                skipped = [
                    self.calls[i] for i in sorted(remaining)
                    if any(self.calls[d].error is not None
                           for d in self.calls[i].depends_on)
                ]
                for call in skipped:
                    call.error = RuntimeError(
                        f"dependency of {call.function} failed"
                    )
                    remaining.discard(call.index)
                    completed.add(call.index)
                for call in ready:
                    remaining.discard(call.index)
                    launch(call)
                still_running = [i for i in in_flight if i not in completed]
                if not remaining and not still_running:
                    break
                if not ready and not skipped and still_running:
                    progress.wait(timeout=60.0)
                elif not ready and not skipped and not still_running and remaining:
                    raise RuntimeError("transaction deadlock: cyclic dependencies")
        failures = [(c, c.error) for c in self.calls if c.error is not None]
        if failures:
            raise TransactionError(failures)
        return self.calls


def _classify(signature, args) -> tuple[list[Any], list[Any]]:
    """Arrays this call reads / writes (by object identity)."""
    reads: list[Any] = []
    writes: list[Any] = []
    for spec, arg in zip(signature.args, args):
        if not isinstance(arg, np.ndarray):
            continue
        if spec.is_input:
            reads.append(arg)
        if spec.is_output:
            writes.append(arg)
    return reads, writes


def _overlap(group_a: list[Any], group_b: list[Any]) -> bool:
    ids_b = {id(x) for x in group_b}
    return any(id(x) in ids_b for x in group_a)
