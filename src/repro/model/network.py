"""Network catalogs: the Fig 2 LAN, the Ocha-U WAN uplink, Fig 9 sites.

Table 2 of the paper gives the raw FTP throughput between client/server
pairs; Fig 5 shows Ninf_call throughput saturating near (but slightly
below) FTP.  The gap is marshalling: "Ninf sends data in XDR packets,
marshalling/unmarshalling at both the client and the server, and
communication in-between, occur in parallel" -- a three-stage pipeline
whose sustained rate we model as the harmonic combination of the link
rate and both endpoints' marshalling rates.  With the catalog's
``xdr_bandwidth`` values this lands at ~2.0 MB/s for anything->J90
(FTP 2.7-2.9), ~3.4 for SuperSPARC->Alpha (FTP 4), ~5.9 for
UltraSPARC->Alpha (FTP 7.4): the three saturation groups of Fig 5.

WAN: the Ocha-U <-> ETL path measured 0.17 MB/s.  For the Fig 9
multi-site experiment the four university sites reach ETL over
different backbones; per-site uplink capacities are chosen so that the
multi-site run keeps 82-91% of each site's single-site bandwidth at
c=1x4 (the paper: deterioration "only 9%~18%"), with a shared ETL
access link providing the mild coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.machines import MB, MachineSpec
from repro.sim.network import Link, Route

__all__ = [
    "FTP_THROUGHPUT",
    "LANCatalog",
    "WANCatalog",
    "WAN_SITES",
    "lan_catalog",
    "multisite_wan_catalog",
    "ninf_effective_bandwidth",
    "singlesite_wan_catalog",
]

# Table 2: client -> server -> FTP throughput (bytes/s).
FTP_THROUGHPUT: dict[tuple[str, str], float] = {
    ("supersparc", "ultrasparc"): 4.0 * MB,
    ("supersparc", "alpha"): 4.0 * MB,
    ("supersparc", "j90"): 2.8 * MB,
    ("ultrasparc", "alpha"): 7.4 * MB,
    ("ultrasparc", "j90"): 2.7 * MB,
    ("alpha", "j90"): 2.9 * MB,
    # Within the Alpha cluster / SMP LAN (not in Table 2; fast Ethernet).
    ("alpha", "alpha"): 7.5 * MB,
    ("alpha", "alpha-node"): 7.5 * MB,
    ("alpha-node", "alpha-node"): 7.5 * MB,
    ("alpha", "sparc-smp"): 1.9 * MB,
    ("alpha", "ultrasparc"): 7.4 * MB,
}

# The single-site WAN path of §4.1: Ocha-U to ETL, ~60 km.  FTP measured
# 0.17 MB/s; a single Ninf stream sustains ~0.13 MB/s (Tables 6/7, c=1)
# because one TCP connection is window/RTT-limited below the path
# capacity -- which is also why c=4 clients see ~0.05 MB/s each (more
# than 0.17/4): parallel streams recover part of the path capacity.
# The model: the shared uplink carries the raw 0.17 MB/s, and every
# flow additionally traverses a private "stream" link at the
# single-connection ceiling.
OCHAU_ETL_BANDWIDTH = 0.17 * MB
WAN_STREAM_CEILING = 0.13 * MB
OCHAU_ETL_LATENCY = 0.015  # seconds one way (1997 inter-university IP)

# Fig 9 sites: per-site uplink bandwidth toward ETL (bytes/s).  Only
# Ocha-U's is measured in the paper; the others are plausible 1997
# inter-university paths on different backbones.
WAN_SITES: dict[str, float] = {
    "ochau": 0.17 * MB,
    "utokyo": 0.32 * MB,
    "titech": 0.26 * MB,
    "nitech": 0.21 * MB,
}
# Shared ETL access pipe (Fig 9/10): slightly under the sum of the site
# uplink demands, producing the paper's mild multi-site deterioration
# (9-18% at one client per site).
ETL_ACCESS_BANDWIDTH = 0.48 * MB


def ftp_throughput(client: str, server: str) -> float:
    """Raw (FTP) throughput between two catalog machines."""
    key = (client, server)
    if key in FTP_THROUGHPUT:
        return FTP_THROUGHPUT[key]
    reverse = (server, client)
    if reverse in FTP_THROUGHPUT:
        return FTP_THROUGHPUT[reverse]
    raise KeyError(f"no FTP throughput recorded for {client} <-> {server}")


def ninf_effective_bandwidth(link_bandwidth: float,
                             client: MachineSpec,
                             server: MachineSpec) -> float:
    """Sustained Ninf_call transfer rate across the marshalling pipeline.

    Marshalling pipelines with transmission (the paper: "marshalling
    ... and communication in-between, occur in parallel"), so the
    sustained rate of one call's transfer is the bottleneck stage:
    ``min(B_link, B_xdr_server)``.  With the catalog's
    ``xdr_bandwidth`` values this reproduces the Fig 5 saturation
    groups: ~2.5 MB/s to the J90 (FTP 2.7-2.9), ~4 for
    SuperSPARC->Alpha (FTP 4), ~5.9 for UltraSPARC->Alpha (FTP 7.4).
    """
    return min(link_bandwidth, server.xdr_bandwidth)


@dataclass
class LANCatalog:
    """Routes for a LAN scenario.

    Each client gets a dedicated access path at the pairwise raw (FTP)
    rate of Table 2 -- per-pair limits come from endpoint protocol
    processing, which the simulator charges to server PEs separately --
    and all clients share the server NIC (FDDI-class on the 1997
    testbed), which provides the aggregate-bandwidth ceiling.
    """

    server: MachineSpec
    server_nic: Link
    latency: float = 0.0005

    def route_for(self, client: MachineSpec,
                  client_index: int = 0) -> Route:
        """A fresh access link for one client, joined to the shared NIC."""
        bandwidth = ftp_throughput(client.name, self.server.name)
        access = Link(f"{client.name}{client_index}-access", bandwidth,
                      self.latency)
        return Route([access, self.server_nic],
                     name=f"{client.name}{client_index}->{self.server.name}")


DEFAULT_SERVER_NIC = 12 * MB  # FDDI-class supercomputer attachment


def lan_catalog(server: MachineSpec,
                server_nic_bandwidth: Optional[float] = None) -> LANCatalog:
    """LAN scenario: shared server NIC plus per-client access links.

    Under multi-client load the binding constraint is usually not the
    NIC but the server PEs doing marshalling (see
    :class:`~repro.model.machines.MachineSpec.xdr_bandwidth`), exactly
    as in the paper where J90 CPU utilization saturates while
    per-client throughput degrades gracefully.
    """
    if server_nic_bandwidth is None:
        server_nic_bandwidth = DEFAULT_SERVER_NIC
    nic = Link(f"{server.name}-nic", server_nic_bandwidth, 0.0005)
    return LANCatalog(server=server, server_nic=nic)


def _spec(name: str) -> MachineSpec:
    from repro.model.machines import machine

    return machine(name)


@dataclass
class WANCatalog:
    """Routes for WAN scenarios: per-client TCP stream ceiling, shared
    site uplinks, optional shared server access pipe."""

    server: MachineSpec
    site_links: dict[str, Link] = field(default_factory=dict)
    access_link: Optional[Link] = None
    stream_ceiling: float = WAN_STREAM_CEILING
    latency: float = 0.0

    def route_for_site(self, site: str, client_index: int = 0) -> Route:
        """Route for one client at ``site``: a private single-connection
        link (the TCP window/RTT ceiling) feeding the shared uplinks."""
        stream = Link(f"{site}-stream{client_index}", self.stream_ceiling,
                      0.0)
        links = [stream, self.site_links[site]]
        if self.access_link is not None:
            links.append(self.access_link)
        return Route(links, name=f"{site}{client_index}->{self.server.name}")


def singlesite_wan_catalog(server: MachineSpec) -> WANCatalog:
    """§4.1 single-site WAN: all clients behind the Ocha-U uplink."""
    uplink = Link("ochau-etl", OCHAU_ETL_BANDWIDTH, OCHAU_ETL_LATENCY)
    return WANCatalog(server=server, site_links={"ochau": uplink},
                      latency=OCHAU_ETL_LATENCY)


def multisite_wan_catalog(server: MachineSpec) -> WANCatalog:
    """Fig 9 multi-site WAN: four sites on different backbones, one
    shared ETL access link."""
    site_links = {
        site: Link(f"{site}-backbone", bandwidth, OCHAU_ETL_LATENCY)
        for site, bandwidth in WAN_SITES.items()
    }
    access = Link("etl-access", ETL_ACCESS_BANDWIDTH, 0.002)
    return WANCatalog(server=server, site_links=site_links,
                      access_link=access, latency=OCHAU_ETL_LATENCY)
