"""The machine catalog of the paper's Fig 2 / Table 1.

Calibration
-----------

``P_calc(n) = Pmax * n / (n_half + n)`` (Hockney).  Constants are fitted
so the model reproduces the paper's single-client numbers:

- **J90, 4-PE libSci (sgetrf/sgetrs)**: ``Pmax=800, n_half=500`` Mflops
  gives P(1600)=610 (paper: "J90's Local achieves 600 Mflops when
  n=1600") and, with the measured ~2.5 MB/s LAN throughput, single
  client Ninf_call performance of 96/150/196 Mflops at n=600/1000/1400
  (Table 4 row c=1: 91/141/193).
- **J90, 1-PE**: back-solving Table 3's c=1 rows for ``P_calc`` gives
  165-190 Mflops over n=600..1400; ``Pmax=210, n_half=150`` fits
  (model Ninf perf 71/98/116 vs paper 71/93/114).
- **SuperSPARC client**: flat ~10 Mflops local (Fig 3).
- **UltraSPARC client**: flat ~35 Mflops local (Fig 3).
- **Alpha, optimized (glub4/gslv4 blocked)**: ~135-145 Mflops for large
  n, giving the Fig 4 crossover vs J90 at n~800-1000.
- **Alpha, standard (no blocking)**: ~55-75 Mflops, giving the Fig 4
  crossover at n~400-600.
- **SuperSPARC SMP node**: back-solving Table 5 (c=4, n=600, 3.8 Mflops
  at ~0.43 MB/s) gives ~4.7 Mflops per node.
- **EP rates**: Table 8 (J90, task-parallel, 2^24 pairs/PE) shows
  0.167 Mops sustained per call up to c=4, i.e. 0.167e6 ops/s per PE.
  The Alpha-cluster EP rate (Fig 11) is set to 2e6 ops/s per node.

``xdr_bandwidth`` is the server-side marshalling/TCP processing rate in
bytes per PE-second.  It plays two roles, both visible in the paper's
data: (1) the marshalling stage pipelines with transmission, so a
single call's transfer rate is ``min(link, xdr_server)`` -- Fig 5's
saturation slightly below FTP (2-2.5 vs 2.8 MB/s for the J90); and
(2) marshalling burns PE time, which is why Table 3 reports 82-99% J90
CPU utilization at c=8-16 even though the pure numerical work of the
arriving calls accounts for well under half of that -- back-solving the
utilization columns gives ~2.5 MB/s per PE on the J90.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CATALOG", "HockneyModel", "MachineSpec", "machine"]

MB = 1e6  # bytes (the paper reports MB/s in decimal megabytes)
MFLOPS = 1e6


@dataclass(frozen=True)
class HockneyModel:
    """``P(n) = pmax * n / (n_half + n)`` -- pipeline performance model."""

    pmax: float   # asymptotic flop rate (flop/s)
    n_half: float  # problem size achieving half of pmax

    def performance(self, n: float) -> float:
        """Delivered rate at problem size ``n`` (same units as pmax)."""
        if n <= 0:
            raise ValueError(f"problem size must be positive, got {n}")
        return self.pmax * n / (self.n_half + n)

    def time(self, flops: float, n: float) -> float:
        """Seconds to execute ``flops`` at size-``n`` efficiency."""
        return flops / self.performance(n)


@dataclass(frozen=True)
class MachineSpec:
    """Everything the simulator needs to know about one machine."""

    name: str
    num_pes: int
    # Linpack models keyed by PEs used (1 = task-parallel slice,
    # num_pes = the optimized data-parallel library).
    linpack_1pe: HockneyModel
    linpack_allpe: Optional[HockneyModel] = None
    # Non-blocked "standard" library, where the paper measured one.
    linpack_standard: Optional[HockneyModel] = None
    ep_rate: float = 1e6          # EP ops/s per PE (task-parallel)
    xdr_bandwidth: float = 5 * MB  # marshalling rate, bytes per PE-second
    fork_overhead: float = 0.03   # server fork/exec latency, seconds
    description: str = ""

    def linpack_model(self, pes: int, standard: bool = False) -> HockneyModel:
        """The Linpack model for a PE count / library variant."""
        if standard:
            if self.linpack_standard is None:
                raise ValueError(f"{self.name} has no standard-library model")
            return self.linpack_standard
        if pes <= 1 or self.linpack_allpe is None:
            return self.linpack_1pe
        return self.linpack_allpe


CATALOG: dict[str, MachineSpec] = {}


def _register(spec: MachineSpec) -> MachineSpec:
    CATALOG[spec.name] = spec
    return spec


def machine(name: str) -> MachineSpec:
    """Look up a machine spec by catalog name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; catalog has {sorted(CATALOG)}"
        ) from None


J90 = _register(MachineSpec(
    name="j90",
    num_pes=4,
    linpack_1pe=HockneyModel(pmax=210 * MFLOPS, n_half=150),
    linpack_allpe=HockneyModel(pmax=800 * MFLOPS, n_half=500),
    ep_rate=0.167e6,
    xdr_bandwidth=2.5 * MB,  # scalar XDR/TCP on a vector PE is slow
    description="Cray J90, 4 PE vector server at ETL (libSci sgetrf/sgetrs)",
))

SUPERSPARC = _register(MachineSpec(
    name="supersparc",
    num_pes=1,
    linpack_1pe=HockneyModel(pmax=10.5 * MFLOPS, n_half=15),
    ep_rate=0.4e6,
    xdr_bandwidth=4.0 * MB,
    description="SuperSPARC workstation client (~10 Mflops local Linpack)",
))

ULTRASPARC = _register(MachineSpec(
    name="ultrasparc",
    num_pes=1,
    linpack_1pe=HockneyModel(pmax=37 * MFLOPS, n_half=30),
    ep_rate=1.0e6,
    xdr_bandwidth=5.9 * MB,
    description="UltraSPARC server/client (~35 Mflops local Linpack)",
))

ALPHA = _register(MachineSpec(
    name="alpha",
    num_pes=1,
    linpack_1pe=HockneyModel(pmax=160 * MFLOPS, n_half=150),
    linpack_standard=HockneyModel(pmax=72 * MFLOPS, n_half=40),
    ep_rate=2.0e6,
    xdr_bandwidth=5.9 * MB,
    description="DEC Alpha WS: glub4/gslv4 blocked (optimized) and "
                "standard Linpack",
))

SPARC_SMP = _register(MachineSpec(
    name="sparc-smp",
    num_pes=16,
    linpack_1pe=HockneyModel(pmax=5.2 * MFLOPS, n_half=60),
    # A "highly multithreaded" library: near-linear on an idle machine.
    linpack_allpe=HockneyModel(pmax=60 * MFLOPS, n_half=400),
    ep_rate=0.4e6,
    xdr_bandwidth=0.5 * MB,  # Solaris TCP+XDR on a 50 MHz node
    fork_overhead=0.12,  # Table 5: wait ~0.13-0.2 s on Solaris
    description="16-node SuperSPARC SMP server (Solaris 2.5)",
))

ALPHA_CLUSTER_NODE = _register(MachineSpec(
    name="alpha-node",
    num_pes=1,
    linpack_1pe=HockneyModel(pmax=160 * MFLOPS, n_half=150),
    ep_rate=2.0e6,
    xdr_bandwidth=5.9 * MB,
    description="One node of the 32-processor Alpha cluster (Fig 11)",
))
