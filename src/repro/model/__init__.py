"""1997 calibration: machine and network catalogs, performance models.

The paper's own analysis (§3.1) models a remote Linpack call as::

    T_comm = T_comm0 + (8 n^2 + 20 n) / B
    T_comp = T_comp0 + (2/3 n^3 + 2 n^2) / P_calc(n)

with ``B`` the client-server throughput and ``P_calc(n)`` the server's
local Linpack performance at order ``n``.  We implement exactly this
model.  ``P_calc(n)`` uses the Hockney pipeline form
``Pmax * n / (n_half + n)``, the standard two-parameter characterization
of vector/hierarchical-memory machines, with constants calibrated
against the paper's tables (see the module docstrings and DESIGN.md for
the calibration worked from Tables 3/4 and Figs 3/4).

- :mod:`repro.model.machines` -- the machines of Fig 2/Table 1: Cray
  J90 (4 PE), SuperSPARC, UltraSPARC, Alpha (optimized and standard
  library variants), the 16-node SuperSPARC SMP, and the Alpha cluster.
- :mod:`repro.model.network` -- the LAN of Fig 2 (per-pair FTP
  throughputs of Table 2), the Ocha-U WAN uplink (0.17 MB/s), and the
  Fig 9 multi-site topology.
- :mod:`repro.model.perf` -- Linpack/EP time models shared by the
  simulator and the analytic benches.
"""

from repro.model.machines import (
    CATALOG,
    HockneyModel,
    MachineSpec,
    machine,
)
from repro.model.network import (
    FTP_THROUGHPUT,
    LANCatalog,
    WANCatalog,
    lan_catalog,
    multisite_wan_catalog,
    ninf_effective_bandwidth,
    singlesite_wan_catalog,
)
from repro.model.perf import (
    EPModel,
    LinpackModel,
    ninf_call_performance,
)

__all__ = [
    "CATALOG",
    "EPModel",
    "FTP_THROUGHPUT",
    "HockneyModel",
    "LANCatalog",
    "LinpackModel",
    "MachineSpec",
    "WANCatalog",
    "lan_catalog",
    "machine",
    "multisite_wan_catalog",
    "ninf_call_performance",
    "ninf_effective_bandwidth",
    "singlesite_wan_catalog",
]
