"""Workload time models: Linpack and EP, exactly as the paper defines.

§3.1::

    T_comm = T_comm0 + (8 n^2 + 20 n) / B
    T_comp = T_comp0 + (2/3 n^3 + 2 n^2) / P_calc(n)
    P_ninf_call = (2/3 n^3 + 2 n^2) / T_ninf_call

§4.3::

    P_ninf_call(EP) = 2^(m+1) / T_ninf_call
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.libs.linpack import linpack_bytes, linpack_flops
from repro.model.machines import HockneyModel, MachineSpec

__all__ = ["EPModel", "LinpackModel", "ninf_call_performance"]

# Fixed setup costs (the paper's T_comm0 / T_comp0): connection setup +
# two-stage interface exchange, and executable spin-up, respectively.
DEFAULT_T_COMM0 = 0.15
DEFAULT_T_COMP0 = 0.01


@dataclass(frozen=True)
class LinpackModel:
    """The remote Linpack call on a given server configuration."""

    server: MachineSpec
    pes: int = 1
    standard: bool = False
    t_comm0: float = DEFAULT_T_COMM0
    t_comp0: float = DEFAULT_T_COMP0

    @property
    def hockney(self) -> HockneyModel:
        return self.server.linpack_model(self.pes, standard=self.standard)

    def flops(self, n: int) -> float:
        """The official Linpack operation count at order ``n``."""
        return linpack_flops(n)

    def comm_bytes(self, n: int) -> float:
        """The paper's per-call transfer size ``8n^2 + 20n``."""
        return linpack_bytes(n)

    def input_bytes(self, n: int) -> float:
        """Bytes shipped client -> server (A, b, scalars)."""
        # A (8n^2) plus b and scalars ship out; x (8n) comes back.
        return 8.0 * n * n + 12.0 * n

    def output_bytes(self, n: int) -> float:
        """Bytes shipped server -> client (the solution vector)."""
        return 8.0 * n

    def comp_time(self, n: int) -> float:
        """T_comp = T_comp0 + flops / P_calc(n)."""
        return self.t_comp0 + self.hockney.time(self.flops(n), n)

    def comm_time(self, n: int, bandwidth: float) -> float:
        """T_comm = T_comm0 + (8n^2 + 20n) / B."""
        return self.t_comm0 + self.comm_bytes(n) / bandwidth

    def call_time(self, n: int, bandwidth: float) -> float:
        """Single uncontended Ninf_call latency (§3.1's model)."""
        return self.comm_time(n, bandwidth) + self.comp_time(n)

    def call_performance(self, n: int, bandwidth: float) -> float:
        """The paper's P_ninf_call, in flop/s."""
        return self.flops(n) / self.call_time(n, bandwidth)

    def local_performance(self, n: int) -> float:
        """Local execution (no Ninf), in flop/s."""
        return self.flops(n) / (self.t_comp0 + self.hockney.time(self.flops(n), n))


@dataclass(frozen=True)
class EPModel:
    """The remote EP call: O(1) communication, 2^(m+1) operations."""

    server: MachineSpec
    m: int = 24
    request_bytes: float = 256.0
    reply_bytes: float = 512.0
    t_comm0: float = DEFAULT_T_COMM0
    t_comp0: float = DEFAULT_T_COMP0

    def operations(self) -> float:
        """The EP operation count ``2^(m+1)``."""
        return float(2 ** (self.m + 1))

    def comp_time(self, pes: int = 1) -> float:
        """Task-parallel EP on ``pes`` dedicated PEs."""
        return self.t_comp0 + self.operations() / (self.server.ep_rate * pes)

    def comm_time(self, bandwidth: float) -> float:
        """O(1) request/reply transfer time."""
        return self.t_comm0 + (self.request_bytes + self.reply_bytes) / bandwidth

    def call_time(self, bandwidth: float, pes: int = 1) -> float:
        """End-to-end EP Ninf_call latency."""
        return self.comm_time(bandwidth) + self.comp_time(pes)

    def call_performance(self, bandwidth: float, pes: int = 1) -> float:
        """Mops in the paper's Table 8 normalization (ops/s)."""
        return self.operations() / self.call_time(bandwidth, pes)


def ninf_call_performance(flops: float, elapsed: float) -> float:
    """Generic P_ninf_call = work / wall-time."""
    if elapsed <= 0:
        return float("inf")
    return flops / elapsed
