"""``repro.analysis`` -- project-aware static checks (``ninf-lint``).

An AST-walking lint framework (:mod:`repro.analysis.core`) plus the
five checkers that encode this repo's concurrency and observability
conventions:

- ``lock-discipline`` (:mod:`repro.analysis.locks`)
- ``resource-lifecycle`` (:mod:`repro.analysis.lifecycle`)
- ``deadline-propagation`` (:mod:`repro.analysis.deadlines`)
- ``await-under-lock`` (:mod:`repro.analysis.awaitlock`)
- ``catalog-pinned-names`` (:mod:`repro.analysis.catalog`)

Run it as ``ninf-lint src`` (or ``python -m repro.analysis src``).
The rule catalog, suppression syntax, and extension guide live in
ANALYSIS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.analysis.awaitlock import AwaitUnderLockChecker
from repro.analysis.catalog import CatalogNamesChecker
from repro.analysis.core import (
    Checker,
    Finding,
    SourceModule,
    iter_python_files,
    load_baseline,
    run_checks,
    write_baseline,
)
from repro.analysis.deadlines import DeadlinePropagationChecker
from repro.analysis.lifecycle import ResourceLifecycleChecker
from repro.analysis.locks import GUARDED_BY, LockDisciplineChecker, LockSpec

__all__ = [
    "ALL_CHECKER_CLASSES",
    "AwaitUnderLockChecker",
    "CatalogNamesChecker",
    "Checker",
    "DeadlinePropagationChecker",
    "Finding",
    "GUARDED_BY",
    "LockDisciplineChecker",
    "LockSpec",
    "ResourceLifecycleChecker",
    "SourceModule",
    "all_checkers",
    "iter_python_files",
    "load_baseline",
    "run_checks",
    "write_baseline",
]

#: Every project checker, in the order they run and report.
ALL_CHECKER_CLASSES = (
    LockDisciplineChecker,
    ResourceLifecycleChecker,
    DeadlinePropagationChecker,
    AwaitUnderLockChecker,
    CatalogNamesChecker,
)


def all_checkers(repo_root: Optional[Path] = None) -> tuple[Checker, ...]:
    """One instance of every checker, wired to ``repo_root`` for the
    rules that cross-check the docs."""
    return (
        LockDisciplineChecker(),
        ResourceLifecycleChecker(),
        DeadlinePropagationChecker(),
        AwaitUnderLockChecker(),
        CatalogNamesChecker(repo_root=repo_root),
    )
