"""``repro.analysis`` -- project-aware static checks (``ninf-lint``).

An AST-walking lint framework (:mod:`repro.analysis.core`) plus the
seven checkers that encode this repo's concurrency, wire-protocol, and
observability conventions:

- ``lock-discipline`` (:mod:`repro.analysis.locks`)
- ``resource-lifecycle`` (:mod:`repro.analysis.lifecycle`)
- ``deadline-propagation`` (:mod:`repro.analysis.deadlines`) -- both
  per-function and, since the interprocedural layer, call-graph-aware
- ``await-under-lock`` (:mod:`repro.analysis.awaitlock`)
- ``catalog-pinned-names`` (:mod:`repro.analysis.catalog`)
- ``async-blocking-reachability`` (:mod:`repro.analysis.asyncblocking`)
- ``wire-symmetry`` (:mod:`repro.analysis.wiresym`)

The last two (and the upgraded deadline rule) are whole-program passes
over the shared call graph (:mod:`repro.analysis.callgraph`), built
once per run on :class:`~repro.analysis.core.Project`.

Run it as ``ninf-lint src`` (or ``python -m repro.analysis src``).
The rule catalog, suppression syntax, and extension guide live in
ANALYSIS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.analysis.asyncblocking import AsyncBlockingReachabilityChecker
from repro.analysis.awaitlock import AwaitUnderLockChecker
from repro.analysis.callgraph import CallGraph
from repro.analysis.catalog import CatalogNamesChecker
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    ProjectChecker,
    SourceModule,
    iter_python_files,
    load_baseline,
    run_checks,
    write_baseline,
)
from repro.analysis.deadlines import DeadlinePropagationChecker
from repro.analysis.lifecycle import ResourceLifecycleChecker
from repro.analysis.locks import GUARDED_BY, LockDisciplineChecker, LockSpec
from repro.analysis.wiresym import WireSymmetryChecker

__all__ = [
    "ALL_CHECKER_CLASSES",
    "AsyncBlockingReachabilityChecker",
    "AwaitUnderLockChecker",
    "CallGraph",
    "CatalogNamesChecker",
    "Checker",
    "DeadlinePropagationChecker",
    "Finding",
    "GUARDED_BY",
    "LockDisciplineChecker",
    "LockSpec",
    "Project",
    "ProjectChecker",
    "ResourceLifecycleChecker",
    "SourceModule",
    "WireSymmetryChecker",
    "all_checkers",
    "iter_python_files",
    "load_baseline",
    "run_checks",
    "write_baseline",
]

#: Every project checker, in the order they run and report.
ALL_CHECKER_CLASSES = (
    LockDisciplineChecker,
    ResourceLifecycleChecker,
    DeadlinePropagationChecker,
    AwaitUnderLockChecker,
    CatalogNamesChecker,
    AsyncBlockingReachabilityChecker,
    WireSymmetryChecker,
)


def all_checkers(repo_root: Optional[Path] = None) -> tuple[Checker, ...]:
    """One instance of every checker, wired to ``repo_root`` for the
    rules that cross-check the docs."""
    protocol_md = repo_root / "PROTOCOL.md" if repo_root else None
    return (
        LockDisciplineChecker(),
        ResourceLifecycleChecker(),
        DeadlinePropagationChecker(),
        AwaitUnderLockChecker(),
        CatalogNamesChecker(repo_root=repo_root),
        AsyncBlockingReachabilityChecker(),
        WireSymmetryChecker(protocol_md=protocol_md),
    )
