"""The AST-walking framework under ``ninf-lint``.

Three pieces every checker builds on:

- :class:`SourceModule` -- one parsed Python file: source text, AST,
  parent links, and the ``# lint: ignore[rule]`` suppressions scraped
  from its comments.
- :class:`Finding` -- one diagnostic, pinned to ``file:line:col`` with
  a stable rule id and the enclosing ``Class.method`` symbol.  Findings
  order and fingerprint deterministically, so text output is diffable
  and baselines survive unrelated edits.
- :class:`Checker` -- the per-rule visitor base.  A checker receives a
  :class:`SourceModule` and yields findings; the runner handles file
  discovery, suppression filtering, and ordering.

Suppression syntax (see ANALYSIS.md): a comment anywhere on the
physical line of the finding --

``x = self._idle  # lint: ignore[lock-discipline]``

``# lint: ignore`` with no bracket suppresses every rule on that line;
a bracketed, comma-separated list suppresses just those rules.

Baselines: :func:`write_baseline` records the fingerprints of the
current findings; :func:`load_baseline` + the runner's filtering make
``ninf-lint`` fail only on *new* findings.  Fingerprints deliberately
exclude line numbers so a baseline survives code motion.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "ProjectChecker",
    "SourceModule",
    "iter_python_files",
    "load_baseline",
    "run_checks",
    "write_baseline",
]

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]*)\])?")

#: Marker meaning "every rule is suppressed on this line".
_ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""

    @property
    def location(self) -> str:
        """``path:line:col`` -- the clickable anchor."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-independent identity used by baselines.

        Excludes ``line``/``col`` on purpose: moving code around must
        not turn a baselined finding into a "new" one.
        """
        return f"{self.rule}|{self.path}|{self.symbol}|{self.message}"

    def to_dict(self) -> dict[str, object]:
        """The JSON-output form (``ninf-lint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        """The one-line text form."""
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.location}: {self.rule}: {self.message}{where}"


class SourceModule:
    """One parsed source file plus the lookups checkers need."""

    def __init__(self, path: Path, display_path: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = _scan_suppressions(self.lines)
        self._parents: Optional[dict[ast.AST, ast.AST]] = None

    @classmethod
    def load(cls, path: Path, display_path: str
             ) -> tuple[Optional["SourceModule"], Optional[Finding]]:
        """Parse ``path``; a syntax error becomes a finding, not a crash."""
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            return None, Finding(path=display_path, line=int(line), col=0,
                                 rule="parse-error",
                                 message=f"cannot analyse file: {exc}")
        return cls(path, display_path, source, tree), None

    # -- structure lookups ---------------------------------------------------

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_symbol(self, node: ast.AST) -> str:
        """``Class.method`` (or function / class name) containing ``node``."""
        names: list[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names))

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a ``# lint: ignore`` comment covers this finding."""
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return rules is _ALL_RULES or finding.rule in rules


def _scan_suppressions(lines: Sequence[str]
                       ) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rules suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for index, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            table[index] = _ALL_RULES
        else:
            rules = frozenset(
                part.strip() for part in spec.split(",") if part.strip())
            table[index] = rules or _ALL_RULES
    return table


class Checker:
    """Base class every rule implements.

    Subclasses set :attr:`rule` (the stable id used in output and in
    suppression comments) and :attr:`description`, and implement
    :meth:`check` as a generator of findings over one module.
    """

    rule: str = ""
    description: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield every finding this rule produces for ``module``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def finding(self, module: SourceModule, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node`` with the symbol filled in."""
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            symbol=module.enclosing_symbol(node),
        )


class Project:
    """Every :class:`SourceModule` of one lint run, parsed exactly once.

    The runner loads all modules up front and hands the same
    ``Project`` to every :class:`ProjectChecker`, so whole-program
    passes share one parse *and* one call graph -- adding a new
    interprocedural rule costs its traversal, not a re-parse of the
    tree (the CI static-analysis job's 5-minute budget depends on
    this).
    """

    def __init__(self, modules: Sequence[SourceModule],
                 root: Optional[Path] = None):
        self.modules = list(modules)
        self.root = root
        self._by_display = {m.display_path: m for m in self.modules}
        self._callgraph = None

    def module(self, display_path: str) -> Optional[SourceModule]:
        """The module reported under ``display_path``, if loaded."""
        return self._by_display.get(display_path)

    @property
    def callgraph(self):
        """The shared :class:`~repro.analysis.callgraph.CallGraph`,
        built lazily on first use and reused by every checker."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph.build(self.modules)
        return self._callgraph

    def is_suppressed(self, finding: Finding) -> bool:
        """Suppression lookup for findings that cross module boundaries."""
        module = self._by_display.get(finding.path)
        return module is not None and module.is_suppressed(finding)


class ProjectChecker(Checker):
    """Base class for whole-program rules.

    A project checker sees the entire :class:`Project` at once (call
    graph included) instead of one module at a time.  Subclasses
    implement :meth:`check_project`; the per-module :meth:`check` hook
    stays available for rules that combine both views (e.g.
    ``deadline-propagation``).
    """

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Per-module pass: nothing by default for project rules."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield every finding this rule produces for the project."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def project_finding(self, project: Project, module: SourceModule,
                        node: ast.AST, message: str) -> Finding:
        """Build a finding anchored in an arbitrary project module."""
        return self.finding(module, node, message)


# -- file discovery and the runner ------------------------------------------

def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files listed directly, trees
    recursively), deduplicated and sorted for deterministic output."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            seen.add(path)
    return sorted(seen)


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def run_checks(paths: Sequence[Path], checkers: Sequence[Checker],
               root: Optional[Path] = None) -> list[Finding]:
    """Run ``checkers`` over every Python file under ``paths``.

    Returns the surviving findings -- suppressed ones are dropped --
    sorted by (path, line, col, rule).  ``root`` shortens reported
    paths to repo-relative form.
    """
    findings: list[Finding] = []
    modules: list[SourceModule] = []
    for path in iter_python_files(paths):
        module, parse_finding = SourceModule.load(
            path, _display_path(path, root))
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert module is not None
        modules.append(module)
        for checker in checkers:
            for finding in checker.check(module):
                if not module.is_suppressed(finding):
                    findings.append(finding)
    project = Project(modules, root=root)
    for checker in checkers:
        if isinstance(checker, ProjectChecker):
            for finding in checker.check_project(project):
                if not project.is_suppressed(finding):
                    findings.append(finding)
    return sorted(findings)


# -- baselines ---------------------------------------------------------------

def load_baseline(path: Path) -> set[str]:
    """The fingerprints recorded by a previous ``--write-baseline``."""
    data = json.loads(path.read_text(encoding="utf-8"))
    fingerprints = data.get("fingerprints", [])
    if not isinstance(fingerprints, list):
        raise ValueError(f"malformed baseline file {path}")
    return {str(item) for item in fingerprints}


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Record ``findings`` as the accepted baseline; returns the count."""
    fingerprints = sorted({f.fingerprint() for f in findings})
    payload = {"version": 1, "fingerprints": fingerprints}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)
