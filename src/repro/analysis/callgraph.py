"""Project-wide call graph for the interprocedural checkers.

The graph is built once per lint run (cached on
:class:`~repro.analysis.core.Project`) from every loaded
:class:`~repro.analysis.core.SourceModule` and shared by
``async-blocking-reachability``, ``wire-symmetry``, and the
call-graph-aware half of ``deadline-propagation``.

Resolution is deliberately *conservative*: an edge exists only when the
callee can be named with confidence, and every call that cannot be --
dynamic dispatch through a handler table, a callable parameter, an
attribute of unknown type -- lands in the explicit
:attr:`CallGraph.unresolved` set instead of being guessed at.  The
checkers treat unresolved calls as "no edge" (they can neither block a
coroutine nor carry a deadline), and the golden tests pin the
unresolved set so a resolver regression is a visible diff, not a
silent hole.

What *is* resolved:

- bare names: nested functions, module-level functions/classes, and
  ``import``/``from ... import`` aliases (project and stdlib);
- ``self.method()`` through the class's project-internal MRO, and --
  for mixins like ``NinfRpcServices`` that call methods their host
  provides -- through every project subclass's MRO (all candidates
  become edges);
- ``obj.method()`` where ``obj``'s class is known from a parameter
  annotation, an ``x = ClassName(...)`` local, a
  ``self.attr = ClassName(...)`` assignment, or the return annotation
  of an already-resolved call (``Optional``/``Union``/``Iterator``
  wrappers are unwrapped);
- constructor calls, which edge to the class's ``__init__``.

Calls whose callable is passed *as an argument* never produce an edge,
which is exactly how the sanctioned async/sync bridges
(``run_in_executor``, ``asyncio.to_thread``,
``run_coroutine_threadsafe``, the ``loopbridge`` facade) stay invisible
to reachability: handing a blocking callable to an executor is the fix,
not the bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.analysis.core import SourceModule

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "ExternalCall",
    "FunctionInfo",
    "UnresolvedCall",
    "module_name",
]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``typing`` wrappers whose first argument carries the interesting type.
_UNWRAP_GENERICS = frozenset({
    "Optional", "Iterator", "AsyncIterator", "Generator", "AsyncGenerator",
    "ContextManager", "AsyncContextManager", "Awaitable", "Coroutine",
    "Union",
})


def module_name(display_path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/transport/channel.py`` -> ``repro.transport.channel``;
    paths outside a ``src`` layout keep their own parts
    (``fixtures/thing.py`` -> ``fixtures.thing``).
    """
    parts = list(display_path.split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    while "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FunctionInfo:
    """One function or method node in the graph."""

    qualname: str
    module: SourceModule
    node: _FunctionNode
    is_async: bool
    owner: Optional[str] = None   #: owning class qualname for methods
    parent: Optional[str] = None  #: enclosing function qualname (closures)

    @property
    def short(self) -> str:
        """``Class.method`` / ``function`` without the module prefix."""
        prefix = f"{self.module_prefix}."
        return self.qualname[len(prefix):] \
            if self.qualname.startswith(prefix) else self.qualname

    @property
    def module_prefix(self) -> str:
        return module_name(self.module.display_path)


@dataclass
class ClassInfo:
    """One class: bases, method table, and inferred attribute types."""

    qualname: str
    module: SourceModule
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """A resolved project-internal call edge."""

    caller: str
    target: str
    node: ast.Call
    module: SourceModule


@dataclass(frozen=True)
class ExternalCall:
    """A call resolved to a name outside the project (stdlib, builtin)."""

    caller: str
    name: str
    node: ast.Call
    module: SourceModule


@dataclass(frozen=True)
class UnresolvedCall:
    """A call the resolver refuses to guess at (the known-unresolved set)."""

    caller: str
    reason: str
    describe: str
    node: ast.Call
    module: SourceModule


class _ModuleScope:
    """Per-module symbol tables: imports, top-level defs, classes."""

    def __init__(self, module: SourceModule):
        self.module = module
        self.name = module_name(module.display_path)
        self.package = self.name.rsplit(".", 1)[0] if "." in self.name else ""
        self.imports: dict[str, str] = {}
        self.functions: dict[str, str] = {}  # local name -> qualname
        self.classes: dict[str, str] = {}


class CallGraph:
    """The project call graph; build with :meth:`build`."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, list[CallSite]] = {}
        self.external: dict[str, list[ExternalCall]] = {}
        self.unresolved: dict[str, list[UnresolvedCall]] = {}
        self._scopes: dict[str, _ModuleScope] = {}
        self._subclasses: dict[str, set[str]] = {}
        self._type_env: dict[str, dict[str, str]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, modules: Sequence[SourceModule]) -> "CallGraph":
        """Collect symbols, link classes, then resolve every call."""
        graph = cls()
        for module in modules:
            graph._collect(module)
        graph._link_classes()
        for info in list(graph.functions.values()):
            graph._resolve_function(info)
        return graph

    def _collect(self, module: SourceModule) -> None:
        scope = _ModuleScope(module)
        self._scopes[scope.name] = scope
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    scope.imports[alias.asname or
                                  alias.name.split(".")[0]] = \
                        alias.name if alias.asname else \
                        alias.name.split(".")[0]
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    pkg_parts = scope.name.split(".")
                    pkg_parts = pkg_parts[:len(pkg_parts) - stmt.level]
                    base = ".".join(pkg_parts + ([stmt.module]
                                                 if stmt.module else []))
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    scope.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name
        self._collect_defs(module, scope, module.tree.body,
                           prefix=scope.name, owner=None, parent=None,
                           top_level=True)

    def _collect_defs(self, module: SourceModule, scope: _ModuleScope,
                      body: Iterable[ast.stmt], prefix: str,
                      owner: Optional[str], parent: Optional[str],
                      top_level: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module, node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    owner=owner, parent=parent)
                if owner is not None and parent is None:
                    self.classes[owner].methods.setdefault(stmt.name,
                                                           qualname)
                if top_level:
                    scope.functions[stmt.name] = qualname
                self._collect_defs(module, scope, stmt.body,
                                   prefix=qualname, owner=None,
                                   parent=qualname, top_level=False)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}.{stmt.name}"
                self.classes[qualname] = ClassInfo(
                    qualname=qualname, module=module, node=stmt)
                if top_level:
                    scope.classes[stmt.name] = qualname
                self._collect_defs(module, scope, stmt.body,
                                   prefix=qualname, owner=qualname,
                                   parent=None, top_level=False)

    def _link_classes(self) -> None:
        for info in self.classes.values():
            scope = self._scopes[module_name(info.module.display_path)]
            for base in info.node.bases:
                resolved = self._resolve_symbol(_dotted(base), scope)
                if resolved in self.classes:
                    info.bases.append(resolved)
                    self._subclasses.setdefault(resolved,
                                                set()).add(info.qualname)
        # Attribute types need the full class table, so a second pass.
        for info in self.classes.values():
            self._infer_attr_types(info)

    # -- symbol / type resolution --------------------------------------------

    def _resolve_symbol(self, dotted: Optional[str],
                        scope: _ModuleScope) -> Optional[str]:
        """A dotted name as written -> project qualname or dotted import."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in scope.classes:
            target = scope.classes[head]
        elif head in scope.functions:
            target = scope.functions[head]
        elif head in scope.imports:
            target = scope.imports[head]
        else:
            return self._canonical(dotted)
        return self._canonical(f"{target}.{rest}" if rest else target)

    def _canonical(self, dotted: str) -> str:
        """Follow package re-exports: ``repro.obs.MetricsRegistry``
        (imported into the package ``__init__``) canonicalises to
        ``repro.obs.registry.MetricsRegistry`` where the class lives."""
        seen = set()
        while dotted not in self.classes and dotted not in self.functions:
            if dotted in seen:
                break
            seen.add(dotted)
            mod, _, member = dotted.rpartition(".")
            scope = self._scopes.get(mod)
            if scope is None:
                break
            if member in scope.classes:
                dotted = scope.classes[member]
            elif member in scope.functions:
                dotted = scope.functions[member]
            elif member in scope.imports:
                dotted = scope.imports[member]
            else:
                break
        return dotted

    def mro(self, class_qualname: str) -> list[str]:
        """Project-internal linearisation: the class, then bases BFS."""
        seen: list[str] = []
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.append(current)
            queue.extend(self.classes[current].bases)
        return seen

    def subclasses(self, class_qualname: str) -> set[str]:
        """Every transitive project subclass of ``class_qualname``."""
        result: set[str] = set()
        queue = [class_qualname]
        while queue:
            for sub in self._subclasses.get(queue.pop(), ()):
                if sub not in result:
                    result.add(sub)
                    queue.append(sub)
        return result

    def lookup_method(self, class_qualname: str,
                      name: str) -> Optional[str]:
        """``name`` through the project MRO of ``class_qualname``."""
        for cls in self.mro(class_qualname):
            found = self.classes[cls].methods.get(name)
            if found is not None:
                return found
        return None

    def _mixin_candidates(self, class_qualname: str,
                          name: str) -> list[str]:
        """Where ``self.name()`` may land when the class itself lacks it:
        the MRO of every project subclass (mixin host dispatch)."""
        found = set()
        for sub in self.subclasses(class_qualname):
            target = self.lookup_method(sub, name)
            if target is not None:
                found.add(target)
        return sorted(found)

    def _annotation_type(self, node: Optional[ast.expr],
                         scope: _ModuleScope) -> Optional[str]:
        """A parameter/return annotation -> project class qualname."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = _dotted(node.value)
            if base and base.split(".")[-1] in _UNWRAP_GENERICS:
                inner = node.slice
                if isinstance(inner, ast.Tuple):
                    candidates = [
                        self._annotation_type(elt, scope)
                        for elt in inner.elts
                    ]
                    hits = [c for c in candidates if c is not None]
                    return hits[0] if len(hits) == 1 else None
                return self._annotation_type(inner, scope)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self._annotation_type(node.left, scope)
            right = self._annotation_type(node.right, scope)
            hits = [c for c in (left, right) if c is not None]
            return hits[0] if len(hits) == 1 else None
        resolved = self._resolve_symbol(_dotted(node), scope)
        return resolved if resolved in self.classes else None

    def _constructed_class(self, call: ast.Call,
                           scope: _ModuleScope) -> Optional[str]:
        """``ClassName(...)`` -> the class qualname, else None."""
        target = self._resolve_symbol(_dotted(call.func), scope)
        return target if target in self.classes else None

    def _call_result_type(self, call: ast.Call, scope: _ModuleScope,
                          env: dict[str, str]) -> Optional[str]:
        """The class an expression ``f(...)`` evaluates to, if knowable."""
        constructed = self._constructed_class(call, scope)
        if constructed is not None:
            return constructed
        target = self._resolve_call_target(call, scope, env)
        if isinstance(target, str) and target in self.functions:
            info = self.functions[target]
            target_scope = self._scopes[info.module_prefix]
            return self._annotation_type(info.node.returns, target_scope)
        return None

    def _infer_attr_types(self, info: ClassInfo) -> None:
        scope = self._scopes[module_name(info.module.display_path)]
        inferred: dict[str, Optional[str]] = {}

        def note(attr: str, hinted: Optional[str]) -> None:
            if hinted is None:
                return
            if attr in inferred and inferred[attr] != hinted:
                inferred[attr] = None  # conflicting writes: unknown
            else:
                inferred[attr] = hinted

        for method_qual in info.methods.values():
            method = self.functions[method_qual]
            params = _param_annotations(method.node, scope, self)
            for node in ast.walk(method.node):
                targets: list[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    if isinstance(node, ast.AnnAssign):
                        hinted = self._annotation_type(node.annotation,
                                                       scope)
                        if hinted is not None:
                            note(target.attr, hinted)
                            continue
                    note(target.attr,
                         self._value_type(value, scope, params))
        info.attr_types = {attr: cls for attr, cls in inferred.items()
                           if cls is not None}

    def _value_type(self, value: Optional[ast.expr], scope: _ModuleScope,
                    env: dict[str, str]) -> Optional[str]:
        """Best-effort type of an assigned expression."""
        if value is None:
            return None
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if isinstance(value, ast.Call):
            return self._call_result_type(value, scope, env)
        if isinstance(value, ast.IfExp):
            hits = {t for t in (self._value_type(value.body, scope, env),
                                self._value_type(value.orelse, scope, env))
                    if t is not None}
            return hits.pop() if len(hits) == 1 else None
        if isinstance(value, ast.BoolOp):
            hits = {t for t in (self._value_type(v, scope, env)
                                for v in value.values) if t is not None}
            return hits.pop() if len(hits) == 1 else None
        if isinstance(value, ast.Await):
            return self._value_type(value.value, scope, env)
        return None

    # -- expression typing inside one function --------------------------------

    def type_env(self, qualname: str) -> dict[str, str]:
        """Local name -> class qualname inferred for one function."""
        return self._type_env.get(qualname, {})

    def infer_expr_type(self, func_qualname: str,
                        expr: ast.expr) -> Optional[str]:
        """The project class an expression evaluates to inside a
        function, or None.  Used by checkers that splice summaries
        (``wire-symmetry``'s ``obj.encode(enc)``)."""
        info = self.functions.get(func_qualname)
        if info is None:
            return None
        scope = self._scopes[info.module_prefix]
        env = self.type_env(func_qualname)
        return self._expr_type(expr, scope, env)

    def _expr_type(self, expr: ast.expr, scope: _ModuleScope,
                   env: dict[str, str]) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._expr_type(expr.value, scope, env)
            if owner is None:
                return None
            for cls in self.mro(owner):
                hinted = self.classes[cls].attr_types.get(expr.attr)
                if hinted is not None:
                    return hinted
            # Property access: type from the property's return annotation.
            method = self.lookup_method(owner, expr.attr)
            if method is not None and _is_property(
                    self.functions[method].node):
                info = self.functions[method]
                return self._annotation_type(
                    info.node.returns, self._scopes[info.module_prefix])
            return None
        if isinstance(expr, ast.Call):
            return self._call_result_type(expr, scope, env)
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value, scope, env)
        return None

    # -- call resolution ------------------------------------------------------

    def _build_type_env(self, info: FunctionInfo,
                        scope: _ModuleScope) -> dict[str, str]:
        env = _param_annotations(info.node, scope, self)
        if info.owner is not None and not _is_staticmethod(info.node):
            arg_names = [a.arg for a in info.node.args.posonlyargs
                         + info.node.args.args]
            if arg_names:
                env.setdefault(arg_names[0], info.owner)
        conflicted: set[str] = set()
        for node in _local_nodes(info.node):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        hinted = self._value_type(item.context_expr, scope,
                                                  env)
                        _note_local(env, conflicted,
                                    item.optional_vars.id, hinted)
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    _note_local(env, conflicted, target.id,
                                self._value_type(value, scope, env))
        for name in conflicted:
            env.pop(name, None)
        return env

    def _resolve_call_target(
            self, call: ast.Call, scope: _ModuleScope,
            env: dict[str, str],
            caller: Optional[FunctionInfo] = None
    ) -> Union[str, list[str], UnresolvedCall, None]:
        """One call -> project qualname(s), external dotted name (as a
        plain string prefixed with ``external:``), or an unresolved
        marker.  ``None`` means "a project class with no __init__"."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            # Nested function visible through the enclosing def chain.
            walk = caller
            while walk is not None:
                nested = f"{walk.qualname}.{name}"
                if nested in self.functions:
                    return nested
                walk = self.functions.get(walk.parent) \
                    if walk.parent else None
            if name in scope.functions:
                return scope.functions[name]
            if name in scope.classes:
                init = self.lookup_method(scope.classes[name], "__init__")
                return init  # may be None: no project __init__
            if name in scope.imports:
                resolved = self._resolve_symbol(name, scope)
                if resolved in self.functions:
                    return resolved
                if resolved in self.classes:
                    return self.lookup_method(resolved, "__init__")
                return f"external:{resolved}"
            if caller is not None and name in _assigned_names(caller.node):
                return UnresolvedCall(
                    caller=caller.qualname, reason="dynamic-callable",
                    describe=f"{name}(...)", node=call,
                    module=scope.module)
            return f"external:{name}"
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # Module-alias receivers: time.sleep, asyncio.get_event_loop.
            dotted = _dotted(receiver)
            if dotted is not None:
                head = dotted.split(".")[0]
                if (head in scope.imports
                        and dotted not in env
                        and head not in env):
                    resolved = self._resolve_symbol(
                        f"{dotted}.{func.attr}", scope)
                    if resolved in self.functions:
                        return resolved
                    if resolved in self.classes:
                        return self.lookup_method(resolved, "__init__")
                    if resolved in self._scopes_member(resolved):
                        return self._scopes_member(resolved)[resolved]
                    if self._is_project_path(resolved):
                        return UnresolvedCall(
                            caller=caller.qualname if caller else "?",
                            reason="unknown-member",
                            describe=f"{dotted}.{func.attr}(...)",
                            node=call, module=scope.module)
                    return f"external:{resolved}"
            owner = self._expr_type(receiver, scope, env)
            if owner is not None:
                found = self.lookup_method(owner, func.attr)
                if found is not None:
                    return found
                candidates = self._mixin_candidates(owner, func.attr)
                if candidates:
                    return candidates
                return UnresolvedCall(
                    caller=caller.qualname if caller else "?",
                    reason="unknown-method",
                    describe=f"{_short_class(owner)}.{func.attr}(...)",
                    node=call, module=scope.module)
            return UnresolvedCall(
                caller=caller.qualname if caller else "?",
                reason="unknown-receiver",
                describe=f".{func.attr}(...)", node=call,
                module=scope.module)
        return UnresolvedCall(
            caller=caller.qualname if caller else "?",
            reason="dynamic-callable", describe="(...)", node=call,
            module=scope.module)

    def _scopes_member(self, dotted: Optional[str]) -> dict[str, str]:
        """Project module-level functions addressed as ``module.func``."""
        if not dotted or "." not in dotted:
            return {}
        mod, _, member = dotted.rpartition(".")
        scope = self._scopes.get(mod)
        if scope is None:
            return {}
        table = {}
        if member in scope.functions:
            table[dotted] = scope.functions[member]
        return table

    def _is_project_path(self, dotted: Optional[str]) -> bool:
        if not dotted:
            return False
        return any(dotted == name or dotted.startswith(name + ".")
                   for name in self._scopes)

    def _resolve_function(self, info: FunctionInfo) -> None:
        scope = self._scopes[info.module_prefix]
        env = self._build_type_env(info, scope)
        self._type_env[info.qualname] = env
        edges: list[CallSite] = []
        external: list[ExternalCall] = []
        unresolved: list[UnresolvedCall] = []
        for node in _local_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            result = self._resolve_call_target(node, scope, env,
                                               caller=info)
            if result is None:
                continue  # constructor of an __init__-less class
            if isinstance(result, UnresolvedCall):
                unresolved.append(result)
                continue
            targets = result if isinstance(result, list) else [result]
            for target in targets:
                if target.startswith("external:"):
                    external.append(ExternalCall(
                        caller=info.qualname, name=target[9:],
                        node=node, module=info.module))
                elif target in self.functions:
                    edges.append(CallSite(caller=info.qualname,
                                          target=target, node=node,
                                          module=info.module))
        self.edges[info.qualname] = edges
        self.external[info.qualname] = external
        self.unresolved[info.qualname] = unresolved

    # -- queries --------------------------------------------------------------

    def callees(self, qualname: str) -> list[CallSite]:
        """Resolved project-internal call sites inside ``qualname``."""
        return self.edges.get(qualname, [])

    def external_calls(self, qualname: str) -> list[ExternalCall]:
        """Calls inside ``qualname`` that resolve outside the project
        (stdlib / third-party), by dotted external name."""
        return self.external.get(qualname, [])

    def resolve_method_ref(self, func_qualname: str,
                           expr: ast.expr) -> list[str]:
        """A non-call method reference (``self._handle_call`` passed to
        ``register_handler``) -> candidate function qualnames."""
        info = self.functions.get(func_qualname)
        if info is None or not isinstance(expr, ast.Attribute):
            return []
        scope = self._scopes[info.module_prefix]
        env = self.type_env(func_qualname)
        owner = self._expr_type(expr.value, scope, env)
        if owner is None:
            return []
        found = self.lookup_method(owner, expr.attr)
        if found is not None:
            return [found]
        return self._mixin_candidates(owner, expr.attr)


# -- small AST helpers --------------------------------------------------------

def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string, or None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _local_nodes(function: _FunctionNode) -> list[ast.AST]:
    """Every node of ``function`` excluding nested def/class bodies
    (lambdas stay: they share the enclosing scope's names)."""
    collected: list[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            collected.append(child)
            walk(child)

    walk(function)
    return collected


def _param_annotations(function: _FunctionNode, scope: _ModuleScope,
                       graph: CallGraph) -> dict[str, str]:
    env: dict[str, str] = {}
    args = function.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        hinted = graph._annotation_type(arg.annotation, scope)
        if hinted is not None:
            env[arg.arg] = hinted
    return env


def _assigned_names(function: _FunctionNode) -> set[str]:
    """Names bound inside the function (params, assigns, loop/with
    targets) -- a bare call to one is dynamic dispatch, not a global."""
    names = {a.arg for a in function.args.posonlyargs + function.args.args
             + function.args.kwonlyargs}
    if function.args.vararg:
        names.add(function.args.vararg.arg)
    if function.args.kwarg:
        names.add(function.args.kwarg.arg)
    for node in _local_nodes(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
    return names


def _target_names(target: ast.expr) -> set[str]:
    found: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            found.add(node.id)
    return found


def _note_local(env: dict[str, str], conflicted: set[str], name: str,
                hinted: Optional[str]) -> None:
    if hinted is None:
        if name in env:
            conflicted.add(name)  # retyped by an opaque expression
        return
    if name in env and env[name] != hinted:
        conflicted.add(name)
        return
    env[name] = hinted


def _short_class(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _is_staticmethod(function: _FunctionNode) -> bool:
    return any(isinstance(d, ast.Name) and d.id == "staticmethod"
               for d in function.decorator_list)


def _is_property(function: _FunctionNode) -> bool:
    for dec in function.decorator_list:
        if isinstance(dec, ast.Name) and dec.id == "property":
            return True
        if isinstance(dec, ast.Attribute) and dec.attr in ("getter",):
            return True
    return False
