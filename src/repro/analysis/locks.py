"""Rule ``lock-discipline``: guarded attributes need their lock held.

The concurrent classes of the reproduction guard shared mutable state
with per-instance ``threading.Lock``s under an ad-hoc convention:
mutate only inside ``with self._lock:`` and mark helpers that *assume*
the lock with a ``_locked`` name suffix.  :data:`GUARDED_BY` makes that
convention machine-checkable: it declares, per class, which attributes
are guarded by which lock, populated from the actual ``self._lock``
usage in ``repro.obs.registry``, ``repro.transport.pool``,
``repro.transport.faults``, ``repro.transport.endpoint``,
``repro.server.executor``, ``repro.server.services``,
``repro.metaserver.metaserver``, and ``repro.client.api``.

Two guard strengths:

- ``guarded`` -- every read and write of the attribute must happen
  inside ``with self.<lock>:`` (mutable structures: dicts, lists).
- ``guarded_writes`` -- only writes need the lock; unlocked reads are
  an accepted race (monotonic flags like ``Endpoint._running`` that
  loop threads poll without synchronisation).

What the checker accepts as "lock held":

- the access is lexically inside ``with self.<lock>:`` (any of the
  class's declared locks counts only for its own attributes);
- the enclosing method's name ends in ``_locked`` (the caller-holds-
  the-lock convention);
- the access is in ``__init__``/``__del__`` (no concurrent aliasing
  yet / anymore).

Known limits (by design, documented in ANALYSIS.md): only ``self.X``
accesses are tracked -- module-level helpers that take an instance
parameter (e.g. ``_scalar_render(instrument)``) are out of scope, and
nested functions are assumed to run *without* the enclosing lock (a
closure usually outlives the ``with`` block that created it), so they
must take the lock themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence

from repro.analysis.core import Checker, Finding, SourceModule

__all__ = ["GUARDED_BY", "LockDisciplineChecker", "LockSpec"]


@dataclass(frozen=True)
class LockSpec:
    """One lock attribute and the attributes it protects."""

    lock: str
    guarded: frozenset[str] = field(default_factory=frozenset)
    guarded_writes: frozenset[str] = field(default_factory=frozenset)


def _spec(lock: str, guarded: Sequence[str] = (),
          writes: Sequence[str] = ()) -> LockSpec:
    return LockSpec(lock, frozenset(guarded), frozenset(writes))


#: The project registry: class name -> lock specs.  Subclasses found in
#: the AST inherit the specs of any base listed here (``Histogram`` gets
#: ``_Instrument``'s, ``NinfServer`` gets ``Endpoint``'s, ...).
GUARDED_BY: dict[str, tuple[LockSpec, ...]] = {
    # repro.obs.registry
    "_Instrument": (_spec("_lock", guarded=("_children",)),),
    "MetricsRegistry": (_spec("_lock", guarded=("_instruments",)),),
    # repro.obs.trace
    "Tracer": (_spec("_lock", guarded=("_spans",)),),
    # repro.transport.pool
    "ConnectionPool": (_spec("_lock", guarded=("_idle", "_closed")),),
    # repro.transport.faults
    "FaultPlan": (_spec("_lock",
                        guarded=("events", "injected", "ops_seen")),),
    # repro.transport.breaker
    "CircuitBreaker": (_spec("_lock", guarded=("_keys", "trips")),),
    # repro.transport.endpoint -- loop threads read the flags unlocked
    # by design, so only writes are guarded.
    "Endpoint": (_spec("_lock",
                       writes=("_running", "_listener",
                               "_accept_thread")),),
    # repro.server.executor
    "Executor": (_spec("_lock",
                       guarded=("_pending", "_free_pes", "_seq",
                                "_shutdown", "completed", "failed",
                                "_service_ewma", "expired", "cancelled",
                                "shed"),
                       writes=("_running",)),),
    # repro.server.dedup
    "DedupCache": (_spec("_lock", guarded=("_entries", "hits")),),
    # repro.transport.aioendpoint -- same discipline as Endpoint: the
    # lifecycle attributes are written under _lock, read unlocked.
    "AsyncEndpoint": (_spec("_lock",
                            writes=("_running", "_runner", "_server",
                                    "_sockname", "_handler_pool")),),
    # repro.server.services -- the RPC mixin shared by NinfServer
    # (Endpoint spec inherited) and AsyncNinfServer (AsyncEndpoint spec
    # inherited).
    "NinfRpcServices": (
        _spec("_detached_lock", guarded=("_detached", "_ticket_counter",
                                         "_detached_jobs")),
        _spec("_load_lock", guarded=("_load_value", "_load_stamp")),
    ),
    # repro.client.api
    "NinfClient": (_spec("_records_lock", guarded=("records",)),),
    # repro.metaserver.metaserver
    "BrokeredClient": (_spec("_lock", guarded=("_clients", "records",
                                               "failovers")),),
}

#: Construction/destruction runs before the object is shared (no other
#: thread can hold a reference yet), so guarded attributes may be
#: initialised bare.  ``_init_services`` is the mixin constructor
#: delegate of :class:`repro.server.services.NinfRpcServices`, called
#: only from ``__init__``.
_EXEMPT_METHODS = frozenset({"__init__", "__del__", "_init_services"})


class LockDisciplineChecker(Checker):
    """Flag guarded-attribute access outside ``with self.<lock>:``."""

    rule = "lock-discipline"
    description = ("attributes declared in the _GUARDED_BY registry may "
                   "only be accessed while holding their lock")

    def __init__(self, registry: Optional[
            Mapping[str, tuple[LockSpec, ...]]] = None):
        self.registry = dict(GUARDED_BY if registry is None else registry)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check every class in ``module`` against the registry."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # -- per-class -----------------------------------------------------------

    def _specs_for(self, classdef: ast.ClassDef) -> tuple[LockSpec, ...]:
        specs: list[LockSpec] = list(self.registry.get(classdef.name, ()))
        for base in classdef.bases:
            if isinstance(base, ast.Name):
                specs.extend(self.registry.get(base.id, ()))
            elif isinstance(base, ast.Attribute):
                specs.extend(self.registry.get(base.attr, ()))
        # Deduplicate while preserving declaration order.
        unique: list[LockSpec] = []
        for spec in specs:
            if spec not in unique:
                unique.append(spec)
        return tuple(unique)

    def _check_class(self, module: SourceModule,
                     classdef: ast.ClassDef) -> Iterator[Finding]:
        specs = self._specs_for(classdef)
        if not specs:
            return
        lock_names = frozenset(spec.lock for spec in specs)
        for stmt in classdef.body:
            if not isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS:
                continue
            held = lock_names if stmt.name.endswith("_locked") \
                else frozenset()
            yield from self._walk(module, classdef, specs, stmt.body, held,
                                  lock_names)

    # -- the walk ------------------------------------------------------------

    def _walk(self, module: SourceModule, classdef: ast.ClassDef,
              specs: Sequence[LockSpec], nodes: Sequence[ast.AST],
              held: frozenset[str],
              lock_names: frozenset[str]) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(module, classdef, specs, node, held,
                                   lock_names)

    def _visit(self, module: SourceModule, classdef: ast.ClassDef,
               specs: Sequence[LockSpec], node: ast.AST,
               held: frozenset[str],
               lock_names: frozenset[str]) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set(held)
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in lock_names:
                    acquired.add(lock)
                yield from self._visit(module, classdef, specs,
                                       item.context_expr, held, lock_names)
            yield from self._walk(module, classdef, specs, node.body,
                                  frozenset(acquired), lock_names)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, without the enclosing lock --
            # unless it follows the _locked naming convention.
            inner = lock_names if node.name.endswith("_locked") \
                else frozenset()
            yield from self._walk(module, classdef, specs, node.body,
                                  inner, lock_names)
            return
        if isinstance(node, ast.Lambda):
            yield from self._visit(module, classdef, specs, node.body,
                                   frozenset(), lock_names)
            return
        if isinstance(node, ast.ClassDef):
            return  # a nested class gets its own registry pass

        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                for spec in specs:
                    if attr in spec.guarded or (
                            is_write and attr in spec.guarded_writes):
                        if spec.lock not in held:
                            access = "write to" if is_write else "read of"
                            yield self.finding(
                                module, node,
                                f"{access} {classdef.name}.{attr} without "
                                f"holding self.{spec.lock} (declared "
                                f"guarded in the _GUARDED_BY registry)")
                        break
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, classdef, specs, child, held,
                                   lock_names)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None
