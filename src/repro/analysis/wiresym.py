"""``wire-symmetry``: every op's encoder must mirror its decoder.

The paper's multi-client breakdown attributes the dominant cost to
marshal/transfer -- which is also where silent corruption lives: an
encoder that packs a field its decoder never reads does not crash, it
shifts every subsequent field and produces plausible garbage.  This
rule makes the XDR pack/unpack chains a checked contract.

Four sub-checks, all driven by one abstract *typestate walker* that
tracks, per ``XdrEncoder``/``XdrDecoder`` variable, the sequence of
wire tokens it has produced or consumed:

- **W1 class mirror** -- every class exposing both ``encode`` and
  ``decode`` (the ``protocol/messages.py`` dataclasses) must pack and
  unpack the same token sequence.
- **W2 paired helpers** -- ``marshal.py``'s ``_pack_scalar`` /
  ``_unpack_scalar`` dtype branches must mirror per dtype literal, and
  ``marshal_inputs``/``unmarshal_inputs`` (and the outputs pair) must
  use the same token *alphabet* (set comparison, because the decoder
  interleaves validation reads).
- **W3 op pairing** -- encoder sequences are bound to a
  ``MessageType`` at their *consumption site* (any call whose
  arguments contain both ``enc.getvalue()``/``getbuffer()`` and a
  ``MessageType.X`` literal -- the first one names the op being sent);
  decoder sequences are bound through the ``register_handler`` map
  (handler's payload parameter), through ``if msg_type ==
  MessageType.X`` equality guards, or through the *last*
  ``MessageType`` literal of the call the decoded buffer was assigned
  from (the ``expect=`` reply convention).  For each op, all bound
  encoder sequences and all bound decoder sequences must agree.
- **W4 PROTOCOL.md cross-check** -- ops whose table row is
  machine-parseable (``uint protocol version, string server name``)
  must match the row's token list; rows declared ``empty`` must have
  no packed payload.  Rows with prose layouts (``optional``, ``then
  `count` ...``) are skipped, not guessed.

The walker is deliberately conservative: branches that disagree poison
the sequence (unless one side terminates -- the ``enc = XdrEncoder()``
reset inside an ``except`` handler stays precise), loops poison
accumulators alive across iterations, packing inside an open
``begin_opaque``/``end_opaque`` region collapses to one ``opaque``
token (how ``marshal_outputs(into=enc)`` nests a payload), and
``obj.encode(enc)`` / ``Cls.decode(dec)`` splice the class's W1
sequence when the object's type is known to the call graph.  A
poisoned sequence is never compared -- this rule reports only
mismatches it can prove.

A fifth, purely structural check rides along: ``struct.Struct``
constants (the frame ``HEADER``) must be packed with exactly as many
arguments, and unpacked into exactly as many targets, as the format
string has fields -- the framing layers' own little symmetry.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.analysis.callgraph import CallGraph, module_name
from repro.analysis.core import (Finding, Project, ProjectChecker,
                                 SourceModule)

__all__ = ["WireSymmetryChecker"]

#: unpack method suffix -> canonical wire token.
_CANON = {"opaque_view": "opaque"}

#: First words PROTOCOL.md rows may use that map straight to tokens.
_ROW_VOCAB = frozenset({
    "uint", "int", "string", "double", "float", "bool", "uhyper",
    "hyper", "opaque", "enum", "array",
})

_ROW_RE = re.compile(
    r"^\|\s*\d+\s*\|\s*`(?P<name>\w+)`\s*\|[^|]*\|(?P<payload>[^|]*)\|")

Tokens = tuple[str, ...]


def _canon(token: str) -> str:
    return _CANON.get(token, token)


def _fmt(tokens: Sequence[str]) -> str:
    return ", ".join(tokens) if tokens else "<empty>"


def _mt_name(node: ast.expr) -> Optional[str]:
    """``MessageType.X`` -> ``"X"``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "MessageType"):
        return node.attr
    return None


def _call_mts(call: ast.Call) -> list[str]:
    """Every ``MessageType.X`` literal among a call's arguments,
    positional first, in source order."""
    found = []
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            name = _mt_name(node)
            if name is not None:
                found.append(name)
    return found


def _ctor_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _calls_in_order(node: ast.AST) -> list[ast.Call]:
    calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


class _Acc:
    """Typestate for one encoder/decoder variable."""

    __slots__ = ("kind", "tokens", "poisoned", "opaque_depth",
                 "bound_mt", "from_param")

    def __init__(self, kind: str, bound_mt: Optional[str] = None,
                 from_param: bool = False):
        self.kind = kind  # "enc" | "dec"
        self.tokens: list[str] = []
        self.poisoned = False
        self.opaque_depth = 0
        self.bound_mt = bound_mt
        self.from_param = from_param

    def copy(self) -> "_Acc":
        dup = _Acc(self.kind, self.bound_mt, self.from_param)
        dup.tokens = list(self.tokens)
        dup.poisoned = self.poisoned
        dup.opaque_depth = self.opaque_depth
        return dup

    def same(self, other: "_Acc") -> bool:
        return (self.kind == other.kind
                and self.tokens == other.tokens
                and self.poisoned == other.poisoned
                and self.opaque_depth == other.opaque_depth
                and self.bound_mt == other.bound_mt
                and self.from_param == other.from_param)

    def push(self, token: str) -> None:
        if self.opaque_depth == 0 and not self.poisoned:
            self.tokens.append(token)


class _Emission:
    """One bound sequence observation: op X packed/read these tokens."""

    __slots__ = ("kind", "mt", "tokens", "node", "module")

    def __init__(self, kind: str, mt: str, tokens: Optional[Tokens],
                 node: ast.AST, module: SourceModule):
        self.kind = kind
        self.mt = mt
        self.tokens = tokens  # None when poisoned
        self.node = node
        self.module = module


_Env = dict[str, _Acc]


class _Walker:
    """The typestate walker over one function body."""

    def __init__(self, checker: "WireSymmetryChecker", graph: CallGraph,
                 module: SourceModule, qualname: str,
                 handler_mts: Sequence[str],
                 emissions: Optional[list[_Emission]]):
        self.checker = checker
        self.graph = graph
        self.module = module
        self.qualname = qualname
        self.handler_mts = list(handler_mts)
        self.emissions = emissions if emissions is not None else []
        self.bindings: dict[str, str] = {}
        self.params: set[str] = set()
        self.guards: list[str] = []

    # -- emission helpers ----------------------------------------------------

    def _emit(self, kind: str, mt: str, acc: _Acc,
              node: ast.AST) -> None:
        tokens = None if (acc.poisoned or acc.opaque_depth) \
            else tuple(acc.tokens)
        self.emissions.append(_Emission(kind, mt, tokens, node,
                                        self.module))

    def _emit_decoders(self, env: _Env, node: ast.AST) -> None:
        """At a path terminator, record every bound decoder's sequence."""
        for acc in env.values():
            if acc.kind != "dec" or not acc.tokens or acc.poisoned:
                continue
            if acc.bound_mt is not None:
                self._emit("dec", acc.bound_mt, acc, node)
            elif acc.from_param:
                for mt in self.handler_mts:
                    self._emit("dec", mt, acc, node)

    # -- the walk ------------------------------------------------------------

    def run(self, function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
            seed: Optional[tuple[str, str]] = None) -> _Env:
        """Walk ``function``; ``seed`` pre-binds ``(param, kind)`` for
        class encode/decode methods."""
        args = function.args
        self.params = {a.arg for a in args.posonlyargs + args.args
                       + args.kwonlyargs}
        env: _Env = {}
        if seed is not None:
            name, kind = seed
            env[name] = _Acc(kind)
        terminated = self.walk_body(function.body, env)
        if not terminated:
            self._emit_decoders(env, function)
        return env

    def walk_body(self, stmts: Sequence[ast.stmt], env: _Env) -> bool:
        depth = len(self.guards)
        try:
            for stmt in stmts:
                if self.walk_stmt(stmt, env):
                    return True
            return False
        finally:
            # Residual guards pushed by early-exit `!=` checks end with
            # the block they narrowed.
            del self.guards[depth:]

    def walk_stmt(self, stmt: ast.stmt, env: _Env) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return False
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._events(stmt.value, env)
            self._emit_decoders(env, stmt)
            return True
        if isinstance(stmt, ast.Raise):
            # An abort, not a consumed decode: partially-read
            # sequences on error paths prove nothing about the wire.
            self._events(stmt, env)
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._emit_decoders(env, stmt)
            return True
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, env)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, env)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._walk_loop(stmt, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._events(item.context_expr, env)
            return self.walk_body(stmt.body, env)
        if isinstance(stmt, ast.Assign):
            self._events(stmt.value, env)
            self._assign(stmt.targets, stmt.value, env)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._events(stmt.value, env)
                self._assign([stmt.target], stmt.value, env)
            return False
        # Everything else (Expr, Assert, AugAssign, Delete, ...) just
        # contributes its calls in source order.
        self._events(stmt, env)
        return False

    def _walk_if(self, stmt: ast.If, env: _Env) -> bool:
        self._events(stmt.test, env)
        guard = self._guard_mt(stmt.test)
        body_env = _fork(env)
        if guard is not None:
            self.guards.append(guard)
        body_term = self.walk_body(stmt.body, body_env)
        if guard is not None:
            self.guards.pop()
        else_env = _fork(env)
        else_term = self.walk_body(stmt.orelse, else_env)
        terminated = _merge_into(env, [(body_env, body_term),
                                       (else_env, else_term)])
        # ``if x != MessageType.RESULT: raise`` narrows the remainder
        # of the enclosing block to RESULT (the expect-reply idiom).
        if body_term and not stmt.orelse and not terminated:
            residual = self._residual_mt(stmt.test)
            if residual is not None:
                self.guards.append(residual)
        return terminated

    def _residual_mt(self, test: ast.expr) -> Optional[str]:
        """``x != MessageType.X`` -> ``"X"`` (what x must be when the
        guard's terminating body did not run)."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotEq)):
            for side in (test.left, test.comparators[0]):
                name = _mt_name(side)
                if name is not None:
                    return name
        return None

    def _walk_try(self, stmt: ast.Try, env: _Env) -> bool:
        entry = _fork(env)
        body_env = _fork(env)
        body_term = self.walk_body(stmt.body, body_env)
        if not body_term:
            body_term = self.walk_body(stmt.orelse, body_env)
        branches = [(body_env, body_term)]
        for handler in stmt.handlers:
            henv = _fork(entry)
            for acc in henv.values():
                acc.poisoned = True  # unknown progress at raise point
            branches.append((henv, self.walk_body(handler.body, henv)))
        terminated = _merge_into(env, branches)
        if stmt.finalbody:
            fin_term = self.walk_body(stmt.finalbody, env)
            terminated = terminated or fin_term
        return terminated

    def _walk_loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
                   env: _Env) -> bool:
        if isinstance(stmt, ast.While):
            self._events(stmt.test, env)
        else:
            self._events(stmt.iter, env)
        for acc in env.values():
            acc.poisoned = True  # progress across iterations is unknown
        body_env = _fork(env)
        self.walk_body(stmt.body, body_env)
        # Accumulators surviving the loop body are iteration-dependent.
        for name, acc in body_env.items():
            acc.poisoned = True
            env[name] = acc
        self.walk_body(stmt.orelse, env)
        return False

    def _guard_mt(self, test: ast.expr) -> Optional[str]:
        """``msg_type == MessageType.X`` -> ``"X"``."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)):
            for side in (test.left, test.comparators[0]):
                name = _mt_name(side)
                if name is not None:
                    return name
        return None

    # -- per-statement events -------------------------------------------------

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr,
                env: _Env) -> None:
        rhs = value.value if isinstance(value, ast.Await) else value
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if isinstance(rhs, ast.Call):
            ctor = _ctor_name(rhs)
            if ctor == "XdrEncoder":
                for name in names:
                    env[name] = _Acc("enc")
                return
            if ctor == "XdrDecoder":
                acc = _Acc("dec")
                source = rhs.args[0] if rhs.args else None
                if self.guards:
                    acc.bound_mt = self.guards[-1]
                elif isinstance(source, ast.Name):
                    if source.id in self.bindings:
                        acc.bound_mt = self.bindings[source.id]
                    elif source.id in self.params:
                        acc.from_param = True
                for name in names:
                    env[name] = acc
                return
            # ``reply = channel.request(MessageType.X, ..., expect=
            # MessageType.Y)``: the *last* literal names the reply op.
            mts = _call_mts(rhs)
            if mts:
                bound_names = list(names)
                for target in targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        bound_names.extend(
                            e.id for e in target.elts
                            if isinstance(e, ast.Name))
                for name in bound_names:
                    self.bindings[name] = mts[-1]
        elif isinstance(rhs, ast.Name) and rhs.id in self.bindings:
            for name in names:
                self.bindings[name] = self.bindings[rhs.id]

    def _events(self, node: ast.AST, env: _Env) -> None:
        comp_calls: set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                comp_calls.update(id(c) for c in ast.walk(sub)
                                  if isinstance(c, ast.Call))
        for call in _calls_in_order(node):
            self._event(call, env, in_comprehension=id(call) in comp_calls)

    def _inline_decoder(self, node: ast.expr) -> Optional[_Acc]:
        """``XdrDecoder(x)`` used inline (never named): a fresh bound
        accumulator, or None."""
        if not (isinstance(node, ast.Call)
                and _ctor_name(node) == "XdrDecoder"):
            return None
        acc = _Acc("dec")
        source = node.args[0] if node.args else None
        if self.guards:
            acc.bound_mt = self.guards[-1]
        elif isinstance(source, ast.Name):
            if source.id in self.bindings:
                acc.bound_mt = self.bindings[source.id]
            elif source.id in self.params:
                acc.from_param = True
        return acc

    def _event(self, call: ast.Call, env: _Env,
               in_comprehension: bool = False) -> None:
        func = call.func
        if in_comprehension:
            # Repeat counts are data-dependent: any accumulator the
            # comprehension touches becomes unknowable.
            for node in ast.walk(call):
                if isinstance(node, ast.Name) and node.id in env:
                    env[node.id].poisoned = True
            return
        if isinstance(func, ast.Attribute):
            receiver = func.value
            acc = env.get(receiver.id) \
                if isinstance(receiver, ast.Name) else None
            if acc is not None:
                self._acc_event(call, func.attr, acc, env)
                return
            # ``XdrDecoder(payload).unpack_string()``: one-shot chain.
            inline = self._inline_decoder(receiver)
            if inline is not None:
                if func.attr.startswith("unpack_"):
                    inline.push(_canon(func.attr[7:]))
                self._emit_decoders({"<inline>": inline}, call)
                return
            if func.attr in ("encode", "decode"):
                self._splice(call, func, env)
                return
        # A call that receives an accumulator variable as a *bare*
        # argument may write anything into it: poison -- unless an
        # opaque region is open, in which case the content is one blob
        # by construction (``marshal_outputs(..., into=enc)``).
        consumed = self._consumed_enc(call, env)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id in env:
                acc = env[arg.id]
                if acc.opaque_depth == 0 and arg.id != consumed:
                    acc.poisoned = True
        if consumed is not None:
            mts = _call_mts(call)
            if mts:
                self._emit("enc", mts[0], env[consumed], call)

    def _acc_event(self, call: ast.Call, attr: str, acc: _Acc,
                   env: _Env) -> None:
        if acc.kind == "enc":
            if attr.startswith("pack_"):
                acc.push(_canon(attr[5:]))
            elif attr == "begin_opaque":
                acc.opaque_depth += 1
            elif attr == "end_opaque":
                if acc.opaque_depth > 0:
                    acc.opaque_depth -= 1
                    if acc.opaque_depth == 0:
                        acc.tokens.append("opaque")
                else:
                    acc.poisoned = True
            elif attr in ("getvalue", "getbuffer"):
                pass  # consumption is handled at the enclosing call
            else:
                acc.poisoned = True
        else:
            if attr.startswith("unpack_"):
                acc.push(_canon(attr[7:]))
            elif attr in ("done", "remaining"):
                pass
            else:
                acc.poisoned = True

    def _splice(self, call: ast.Call, func: ast.Attribute,
                env: _Env) -> None:
        """``obj.encode(enc)`` / ``Cls.decode(dec)``: append the class's
        own sequence to the accumulator passed in."""
        acc: Optional[_Acc] = None
        inline = False
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in env:
                acc = env[arg.id]
                break
        if acc is None and func.attr == "decode":
            # ``ErrorReply.decode(XdrDecoder(reply))``: one-shot splice.
            for arg in call.args:
                acc = self._inline_decoder(arg)
                if acc is not None:
                    inline = True
                    break
        if acc is None:
            return
        cls = self._receiver_class(func.value)
        seq = None
        if cls is not None:
            seq = self.checker.class_sequence(cls, acc.kind)
        if seq is None:
            if acc.opaque_depth == 0:
                acc.poisoned = True
            return
        if acc.opaque_depth == 0 and not acc.poisoned:
            acc.tokens.extend(seq)
        if inline:
            self._emit_decoders({"<inline>": acc}, call)

    def _receiver_class(self, receiver: ast.expr) -> Optional[str]:
        inferred = self.graph.infer_expr_type(self.qualname, receiver)
        if inferred is not None:
            return inferred
        # ``ClassName.decode(...)``: the receiver *is* the class.
        info = self.graph.functions.get(self.qualname)
        if info is None:
            return None
        scope = self.graph._scopes[info.module_prefix]
        resolved = self.graph._resolve_symbol(
            _dotted_name(receiver), scope)
        return resolved if resolved in self.graph.classes else None

    def _consumed_enc(self, call: ast.Call, env: _Env) -> Optional[str]:
        """The encoder variable whose ``getvalue()``/``getbuffer()``
        appears among this call's arguments, if any."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(arg):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("getvalue", "getbuffer")
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in env
                        and env[node.func.value.id].kind == "enc"):
                    return node.func.value.id
        return None


def _dotted_name(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _fork(env: _Env) -> _Env:
    return {name: acc.copy() for name, acc in env.items()}


def _merge_into(env: _Env, branches: list[tuple[_Env, bool]]) -> bool:
    """Merge branch environments back into ``env``; returns True when
    every branch terminated (code after the statement is unreachable)."""
    alive = [benv for benv, term in branches if not term]
    if not alive:
        env.clear()
        return True
    merged: _Env = {}
    names = set()
    for benv in alive:
        names.update(benv)
    for name in names:
        accs = [benv.get(name) for benv in alive]
        if any(a is None for a in accs):
            # Bound on one live path only: unknown afterwards.
            present = next(a for a in accs if a is not None)
            acc = present.copy()
            acc.poisoned = True
            merged[name] = acc
            continue
        first = accs[0]
        assert first is not None
        if all(a is not None and a.same(first) for a in accs[1:]):
            merged[name] = first
        else:
            acc = first.copy()
            acc.poisoned = True
            merged[name] = acc
    env.clear()
    env.update(merged)
    return False


class WireSymmetryChecker(ProjectChecker):
    """Pair every encoder pack-sequence with its decoder, per op."""

    rule = "wire-symmetry"
    description = ("an op's XDR pack sequence must mirror its unpack "
                   "sequence, and both must match PROTOCOL.md's op "
                   "table where the row is machine-readable")

    def __init__(self, protocol_md: Optional[Path] = None):
        self.protocol_md = protocol_md
        self._graph: Optional[CallGraph] = None
        self._class_seq_cache: dict[tuple[str, str],
                                    Optional[Tokens]] = {}
        self._in_progress: set[tuple[str, str]] = set()

    # -- class sequences (W1, and splicing for W2/W3) -------------------------

    def class_sequence(self, cls_qualname: str,
                       kind: str) -> Optional[Tokens]:
        """The token sequence of a class's ``encode``/``decode``;
        None when unknown or data-dependent."""
        assert self._graph is not None
        key = (cls_qualname, kind)
        if key in self._class_seq_cache:
            return self._class_seq_cache[key]
        if key in self._in_progress:
            return None  # recursive layout: give up, stay conservative
        self._in_progress.add(key)
        try:
            seq = self._compute_class_sequence(cls_qualname, kind)
        finally:
            self._in_progress.discard(key)
        self._class_seq_cache[key] = seq
        return seq

    def _compute_class_sequence(self, cls_qualname: str,
                                kind: str) -> Optional[Tokens]:
        graph = self._graph
        assert graph is not None
        method_name = "encode" if kind == "enc" else "decode"
        method = graph.lookup_method(cls_qualname, method_name)
        if method is None:
            return None
        info = graph.functions[method]
        args = info.node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        pivot = [p for p in params if p not in ("self", "cls")]
        if not pivot:
            return None
        walker = _Walker(self, graph, info.module, method,
                         handler_mts=(), emissions=[])
        env = walker.run(info.node, seed=(pivot[-1], kind))
        acc = env.get(pivot[-1])
        if acc is None or acc.poisoned or acc.opaque_depth:
            return None
        return tuple(acc.tokens)

    # -- the project pass -----------------------------------------------------

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Run the four symmetry sub-checks (W1 class mirror, W2
        marshal pairs, W3 op pairing, W4 PROTOCOL.md rows) plus the
        struct-arity check over the whole project."""
        graph = project.callgraph
        self._graph = graph
        self._class_seq_cache = {}

        yield from self._check_classes(graph)
        yield from self._check_marshal_pairs(graph)
        yield from self._check_struct_arity(project)

        handler_map = self._handler_map(graph)
        emissions: list[_Emission] = []
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if info.owner is not None and info.node.name in ("encode",
                                                             "decode"):
                continue  # W1 territory; don't re-bind class methods
            walker = _Walker(self, graph, info.module, qualname,
                             handler_mts=handler_map.get(qualname, ()),
                             emissions=emissions)
            walker.run(info.node)
        yield from self._check_ops(emissions)

    # -- W1 -------------------------------------------------------------------

    def _check_classes(self, graph: CallGraph) -> Iterator[Finding]:
        for cls_qualname in sorted(graph.classes):
            info = graph.classes[cls_qualname]
            if not ({"encode", "decode"} <= set(info.methods)):
                continue
            enc = self.class_sequence(cls_qualname, "enc")
            dec = self.class_sequence(cls_qualname, "dec")
            if enc is None or dec is None or enc == dec:
                continue
            anchor = graph.functions[info.methods["encode"]].node
            yield self.finding(
                info.module, anchor,
                f"class {info.node.name}: encode() packs "
                f"[{_fmt(enc)}] but decode() reads [{_fmt(dec)}]; "
                f"the wire layout must mirror")

    # -- W2 -------------------------------------------------------------------

    def _check_marshal_pairs(self, graph: CallGraph) -> Iterator[Finding]:
        pairs = [("_pack_scalar", "_unpack_scalar", "branch"),
                 ("marshal_inputs", "unmarshal_inputs", "alphabet"),
                 ("marshal_outputs", "unmarshal_outputs", "alphabet")]
        for enc_name, dec_name, mode in pairs:
            enc_fn = self._find_function(graph, enc_name)
            dec_fn = self._find_function(graph, dec_name)
            if enc_fn is None or dec_fn is None:
                continue
            if mode == "branch":
                yield from self._check_scalar_branches(graph, enc_fn,
                                                       dec_fn)
            else:
                yield from self._check_alphabet(graph, enc_fn, dec_fn)

    @staticmethod
    def _find_function(graph: CallGraph, name: str) -> Optional[str]:
        hits = [q for q, f in graph.functions.items()
                if f.owner is None and f.parent is None
                and f.node.name == name]
        return hits[0] if len(hits) == 1 else None

    def _branch_tokens(self, function: ast.AST,
                       prefix: str) -> dict[str, list[str]]:
        """dtype literal -> tokens packed/unpacked in that branch."""
        table: dict[str, list[str]] = {}
        for node in ast.walk(function):
            if not isinstance(node, ast.If):
                continue
            keys = self._dtype_keys(node.test)
            if not keys:
                continue
            tokens: list[str] = []
            for stmt in node.body:
                for call in _calls_in_order(stmt):
                    if (isinstance(call.func, ast.Attribute)
                            and call.func.attr.startswith(prefix)):
                        tokens.append(
                            _canon(call.func.attr[len(prefix):]))
            for key in keys:
                table.setdefault(key, tokens)
        return table

    @staticmethod
    def _dtype_keys(test: ast.expr) -> list[str]:
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return []
        op = test.ops[0]
        comp = test.comparators[0]
        if isinstance(op, ast.Eq):
            if isinstance(comp, ast.Constant) and isinstance(comp.value,
                                                             str):
                return [comp.value]
        if isinstance(op, ast.In) and isinstance(comp, (ast.Tuple,
                                                        ast.Set)):
            return [e.value for e in comp.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)]
        return []

    def _check_scalar_branches(self, graph: CallGraph, enc_fn: str,
                               dec_fn: str) -> Iterator[Finding]:
        enc_info = graph.functions[enc_fn]
        dec_info = graph.functions[dec_fn]
        packs = self._branch_tokens(enc_info.node, "pack_")
        unpacks = self._branch_tokens(dec_info.node, "unpack_")
        for dtype in sorted(set(packs) | set(unpacks)):
            enc = packs.get(dtype)
            dec = unpacks.get(dtype)
            if enc is None:
                yield self.finding(
                    dec_info.module, dec_info.node,
                    f"{dec_info.node.name}() handles dtype '{dtype}' "
                    f"but {enc_info.node.name}() never packs it")
            elif dec is None:
                yield self.finding(
                    enc_info.module, enc_info.node,
                    f"{enc_info.node.name}() handles dtype '{dtype}' "
                    f"but {dec_info.node.name}() never unpacks it")
            elif enc != dec:
                yield self.finding(
                    enc_info.module, enc_info.node,
                    f"dtype '{dtype}': {enc_info.node.name}() packs "
                    f"[{_fmt(enc)}] but {dec_info.node.name}() reads "
                    f"[{_fmt(dec)}]")

    def _check_alphabet(self, graph: CallGraph, enc_fn: str,
                        dec_fn: str) -> Iterator[Finding]:
        enc_info = graph.functions[enc_fn]
        dec_info = graph.functions[dec_fn]
        packs = self._token_alphabet(enc_info.node, "pack_")
        unpacks = self._token_alphabet(dec_info.node, "unpack_")
        if packs == unpacks:
            return
        only_enc = sorted(packs - unpacks)
        only_dec = sorted(unpacks - packs)
        detail = []
        if only_enc:
            detail.append(f"packed but never read: [{_fmt(only_enc)}]")
        if only_dec:
            detail.append(f"read but never packed: [{_fmt(only_dec)}]")
        yield self.finding(
            enc_info.module, enc_info.node,
            f"{enc_info.node.name}()/{dec_info.node.name}() wire "
            f"alphabets differ -- {'; '.join(detail)}")

    @staticmethod
    def _token_alphabet(function: ast.AST, prefix: str) -> set[str]:
        tokens = set()
        for node in ast.walk(function):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr.startswith(prefix)):
                tokens.add(_canon(node.func.attr[len(prefix):]))
        return tokens

    # -- struct arity ---------------------------------------------------------

    def _check_struct_arity(self, project: Project) -> Iterator[Finding]:
        counts: dict[str, int] = {}
        for module in project.modules:
            for stmt in module.tree.body:
                if not (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and isinstance(stmt.value, ast.Call)):
                    continue
                func_name = _dotted_name(stmt.value.func) or ""
                if func_name.split(".")[-1] != "Struct":
                    continue
                if not (stmt.value.args
                        and isinstance(stmt.value.args[0], ast.Constant)
                        and isinstance(stmt.value.args[0].value, str)):
                    continue
                counts[stmt.targets[0].id] = _struct_fields(
                    stmt.value.args[0].value)
        if not counts:
            return
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in counts:
                    name = node.func.value.id
                    if node.func.attr == "pack" and \
                            len(node.args) != counts[name] and \
                            not any(isinstance(a, ast.Starred)
                                    for a in node.args):
                        yield self.finding(
                            module, node,
                            f"{name}.pack() called with "
                            f"{len(node.args)} values but the format "
                            f"has {counts[name]} fields")
                elif isinstance(node, ast.Assign) and \
                        isinstance(node.value, ast.Call) and \
                        isinstance(node.value.func, ast.Attribute) and \
                        node.value.func.attr == "unpack" and \
                        isinstance(node.value.func.value, ast.Name) and \
                        node.value.func.value.id in counts and \
                        len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Tuple):
                    name = node.value.func.value.id
                    width = len(node.targets[0].elts)
                    if width != counts[name]:
                        yield self.finding(
                            module, node,
                            f"{name}.unpack() result destructured "
                            f"into {width} names but the format has "
                            f"{counts[name]} fields")

    # -- W3 + W4 --------------------------------------------------------------

    def _handler_map(self, graph: CallGraph) -> dict[str, list[str]]:
        """handler qualname -> MessageTypes registered for it."""
        table: dict[str, list[str]] = {}
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            for call in _calls_in_order(info.node):
                if not (isinstance(call.func, ast.Attribute)
                        and call.func.attr == "register_handler"
                        and len(call.args) >= 2):
                    continue
                mt = _mt_name(call.args[0])
                if mt is None:
                    continue
                for handler in graph.resolve_method_ref(qualname,
                                                        call.args[1]):
                    table.setdefault(handler, [])
                    if mt not in table[handler]:
                        table[handler].append(mt)
        return table

    def _check_ops(self, emissions: list[_Emission]) -> Iterator[Finding]:
        ops: dict[str, dict[str, dict[Tokens, _Emission]]] = {}
        for emission in emissions:
            if emission.tokens is None:
                continue  # poisoned: proves nothing
            side = ops.setdefault(emission.mt, {"enc": {}, "dec": {}})
            side[emission.kind].setdefault(emission.tokens, emission)

        table = self._protocol_table()
        for mt in sorted(set(ops) | set(table)):
            sides = ops.get(mt, {"enc": {}, "dec": {}})
            enc_seqs = sorted(sides["enc"])
            dec_seqs = sorted(sides["dec"])
            for kind, seqs in (("encoder", enc_seqs),
                               ("decoder", dec_seqs)):
                if len(seqs) > 1:
                    site = sides["enc" if kind == "encoder"
                                 else "dec"][seqs[1]]
                    yield self.finding(
                        site.module, site.node,
                        f"op {mt} has conflicting {kind} layouts: "
                        f"[{_fmt(seqs[0])}] vs [{_fmt(seqs[1])}]")
            if len(enc_seqs) == 1 and len(dec_seqs) == 1 \
                    and enc_seqs[0] != dec_seqs[0]:
                site = sides["enc"][enc_seqs[0]]
                yield self.finding(
                    site.module, site.node,
                    f"op {mt}: encoder packs [{_fmt(enc_seqs[0])}] "
                    f"but decoder reads [{_fmt(dec_seqs[0])}]")
            expected = table.get(mt)
            if expected is None:
                continue
            for kind, seqs in (("encoder packs", enc_seqs),
                               ("decoder reads", dec_seqs)):
                for seq in seqs:
                    if seq != expected:
                        side_key = "enc" if kind.startswith("enc") \
                            else "dec"
                        site = sides[side_key][seq]
                        yield self.finding(
                            site.module, site.node,
                            f"op {mt}: PROTOCOL.md declares payload "
                            f"[{_fmt(expected)}] but the {kind} "
                            f"[{_fmt(seq)}]")

    def _protocol_table(self) -> dict[str, Tokens]:
        """op name -> expected token sequence, for parseable rows only."""
        if self.protocol_md is None or not self.protocol_md.is_file():
            return {}
        table: dict[str, Tokens] = {}
        for line in self.protocol_md.read_text(
                encoding="utf-8").splitlines():
            match = _ROW_RE.match(line.strip())
            if match is None:
                continue
            payload = match.group("payload").split(";")[0].strip()
            if payload.startswith("empty"):
                table[match.group("name")] = ()
                continue
            tokens = _parse_row_tokens(payload)
            if tokens is not None:
                table[match.group("name")] = tokens
        return table


def _parse_row_tokens(payload: str) -> Optional[Tokens]:
    """``uint protocol version, string server name`` -> (uint, string);
    None when the row is prose (optional fields, counted repeats)."""
    tokens: list[str] = []
    for part in payload.split(","):
        words = part.strip().split()
        if not words:
            return None
        first = words[0].lower()
        if first == "array":
            tokens.append("array")
        elif first in _ROW_VOCAB:
            tokens.append(first)
        else:
            return None
    return tuple(tokens)


def _struct_fields(fmt: str) -> int:
    """Field count of a ``struct`` format string."""
    if fmt and fmt[0] in "@=<>!":
        fmt = fmt[1:]
    count = 0
    for repeat, code in re.findall(r"(\d*)([a-zA-Z?])", fmt):
        if code in ("s", "p"):
            count += 1
        elif code == "x":
            continue
        else:
            count += int(repeat) if repeat else 1
    return count
