"""Rule ``deadline-propagation``: accepted deadlines must be threaded.

Every layer of the RPC stack takes per-operation deadlines
(``timeout=`` / ``connect_timeout=`` / ``deadline=``) and the paper's
WAN results depend on them actually reaching the socket: a deadline
accepted by a signature but silently dropped turns a bounded call into
an unbounded hang on a half-dead peer.  Two sub-rules:

- **dropped parameter** -- a function declares a deadline-named
  parameter but its body never references it.  The caller believes the
  operation is bounded; it is not.
- **unforwarded at the transport boundary** -- a function that *has* a
  deadline parameter makes a transport-primitive call (``.send()`` /
  ``.recv()`` / ``.request()`` / ``connect()`` / ``send_frame()`` /
  ``recv_frame()`` / ``create_connection()``) without a deadline
  keyword and without referencing its own deadline parameter anywhere
  in the call.  The deadline stops propagating exactly at the layer
  that talks to the network.

Nested functions are separate scopes for both sub-rules: a closure's
transport call is judged against the closure's own parameters (the
enclosing deadline usually bounds the *overall* operation -- e.g. the
polling loop of ``fetch_detached`` -- not each frame).  Calls whose
channel carries a baked-in default deadline and whose enclosing
function accepts none are fine: the rule is about *accepting* a
deadline and then dropping it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.core import Checker, Finding, SourceModule

__all__ = ["DeadlinePropagationChecker"]

#: Parameter names that promise a bounded operation.
DEADLINE_PARAMS = frozenset({
    "timeout", "deadline", "connect_timeout", "poll_timeout",
})

#: ``obj.<attr>(...)`` transport primitives that accept a deadline.
TRANSPORT_ATTRS = frozenset({"send", "recv", "request"})

#: Bare-name transport primitives that accept a deadline.  The async
#: framing twins (``read_frame``/``write_frame``) and dialer
#: (``aconnect``) are judged identically: ``await``-ing them without a
#: deadline is the same unbounded hang.
TRANSPORT_NAMES = frozenset({
    "connect", "send_frame", "recv_frame", "create_connection",
    "read_frame", "write_frame", "aconnect",
})

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class DeadlinePropagationChecker(Checker):
    """Flag deadline parameters that are accepted but not threaded."""

    rule = "deadline-propagation"
    description = ("timeout=/deadline= parameters must be used and "
                   "forwarded to transport calls, not silently dropped")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check every function in ``module`` that takes a deadline."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: SourceModule,
                        function: _FunctionDef) -> Iterator[Finding]:
        params = _deadline_params(function)
        if not params:
            return
        local = _scope_local_nodes(function)
        used = {node.id for node in local
                if isinstance(node, ast.Name) and node.id in params}
        # Nested scopes may legitimately close over the parameter
        # (deferred sends, retry thunks) -- that still counts as use.
        used |= {node.id for node in ast.walk(function)
                 if isinstance(node, ast.Name) and node.id in params}
        for name in sorted(params - used):
            yield self.finding(
                module, function,
                f"parameter {name!r} is accepted by {function.name}() but "
                f"never used: the deadline is silently dropped")
        if not used:
            return
        for node in local:
            if isinstance(node, ast.Call) and _is_transport_call(node) \
                    and not _forwards_deadline(node, used):
                yield self.finding(
                    module, node,
                    f"transport call {_describe(node)} inside "
                    f"{function.name}() forwards no deadline although "
                    f"{_fmt(used)} is in scope; pass timeout= through")


def _deadline_params(function: _FunctionDef) -> set[str]:
    args = function.args
    names = [a.arg for a in
             args.posonlyargs + args.args + args.kwonlyargs]
    return {name for name in names if name in DEADLINE_PARAMS}


def _scope_local_nodes(function: _FunctionDef) -> list[ast.AST]:
    """Every node in ``function`` excluding nested function bodies."""
    collected: list[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            collected.append(child)
            walk(child)

    walk(function)
    return collected


def _is_transport_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in TRANSPORT_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in TRANSPORT_ATTRS
    return False


def _forwards_deadline(call: ast.Call, params: set[str]) -> bool:
    for keyword in call.keywords:
        if keyword.arg in DEADLINE_PARAMS or keyword.arg is None:
            return True  # explicit timeout= (or **kwargs passthrough)
    for arg in call.args:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in params:
                return True
    return False


def _describe(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute):
        return f".{func.attr}(...)"
    return "(...)"


def _fmt(used: set[str]) -> str:
    return "/".join(sorted(used))
