"""Rule ``deadline-propagation``: accepted deadlines must be threaded.

Every layer of the RPC stack takes per-operation deadlines
(``timeout=`` / ``connect_timeout=`` / ``deadline=``) and the paper's
WAN results depend on them actually reaching the socket: a deadline
accepted by a signature but silently dropped turns a bounded call into
an unbounded hang on a half-dead peer.  Two sub-rules:

- **dropped parameter** -- a function declares a deadline-named
  parameter but its body never references it.  The caller believes the
  operation is bounded; it is not.
- **unforwarded at the transport boundary** -- a function that *has* a
  deadline parameter makes a transport-primitive call (``.send()`` /
  ``.recv()`` / ``.request()`` / ``connect()`` / ``send_frame()`` /
  ``recv_frame()`` / ``create_connection()``) without a deadline
  keyword and without referencing its own deadline parameter anywhere
  in the call.  The deadline stops propagating exactly at the layer
  that talks to the network.

Since the interprocedural layer landed there is a third, call-graph
aware sub-rule:

- **dropped along the path** -- a function that accepts *and uses* a
  deadline calls a resolved project function that (a) itself accepts a
  deadline-named parameter and (b) reaches the transport boundary,
  without passing any deadline into it.  The per-function rule cannot
  see this: each function looks locally fine, but the timeout dies at
  the hand-off.  Callees *without* a deadline parameter stay exempt --
  that is the "baked-in channel default" doctrine above, unchanged.

Nested functions are separate scopes for both per-module sub-rules: a
closure's transport call is judged against the closure's own
parameters (the enclosing deadline usually bounds the *overall*
operation -- e.g. the polling loop of ``fetch_detached`` -- not each
frame).  Calls whose channel carries a baked-in default deadline and
whose enclosing function accepts none are fine: the rule is about
*accepting* a deadline and then dropping it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.core import (Finding, Project, ProjectChecker,
                                 SourceModule)

__all__ = ["DeadlinePropagationChecker"]

#: Parameter names that promise a bounded operation.
DEADLINE_PARAMS = frozenset({
    "timeout", "deadline", "connect_timeout", "poll_timeout",
})

#: ``obj.<attr>(...)`` transport primitives that accept a deadline.
TRANSPORT_ATTRS = frozenset({"send", "recv", "request"})

#: Bare-name transport primitives that accept a deadline.  The async
#: framing twins (``read_frame``/``write_frame``) and dialer
#: (``aconnect``) are judged identically: ``await``-ing them without a
#: deadline is the same unbounded hang.
TRANSPORT_NAMES = frozenset({
    "connect", "send_frame", "recv_frame", "create_connection",
    "read_frame", "write_frame", "aconnect",
})

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class DeadlinePropagationChecker(ProjectChecker):
    """Flag deadline parameters that are accepted but not threaded."""

    rule = "deadline-propagation"
    description = ("timeout=/deadline= parameters must be used and "
                   "forwarded to transport calls -- locally and along "
                   "every call-graph path to the transport boundary")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check every function in ``module`` that takes a deadline."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: SourceModule,
                        function: _FunctionDef) -> Iterator[Finding]:
        params = _deadline_params(function)
        if not params:
            return
        local = _scope_local_nodes(function)
        used = {node.id for node in local
                if isinstance(node, ast.Name) and node.id in params}
        # Nested scopes may legitimately close over the parameter
        # (deferred sends, retry thunks) -- that still counts as use.
        used |= {node.id for node in ast.walk(function)
                 if isinstance(node, ast.Name) and node.id in params}
        for name in sorted(params - used):
            yield self.finding(
                module, function,
                f"parameter {name!r} is accepted by {function.name}() but "
                f"never used: the deadline is silently dropped")
        if not used:
            return
        for node in local:
            if isinstance(node, ast.Call) and _is_transport_call(node) \
                    and not _forwards_deadline(node, used):
                yield self.finding(
                    module, node,
                    f"transport call {_describe(node)} inside "
                    f"{function.name}() forwards no deadline although "
                    f"{_fmt(used)} is in scope; pass timeout= through")

    # -- call-graph sub-rule --------------------------------------------------

    def check_project(self, project: Project) -> Iterator[Finding]:
        """A used deadline must survive every resolved hand-off to a
        transport-reaching callee that could carry it."""
        graph = project.callgraph
        reaching = _transport_reaching(graph)
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            params = _deadline_params(info.node)
            if not params:
                continue
            used = {node.id for node in ast.walk(info.node)
                    if isinstance(node, ast.Name) and node.id in params}
            if not used:
                continue  # the dropped-parameter sub-rule owns this
            for site in graph.callees(qualname):
                target = graph.functions[site.target]
                if site.target not in reaching:
                    continue
                if not _deadline_params(target.node):
                    continue  # baked-in default doctrine: exempt
                if _is_transport_call(site.node):
                    continue  # the per-module sub-rule owns this call
                if _forwards_deadline(site.node, used):
                    continue
                yield self.finding(
                    info.module, site.node,
                    f"call to {target.short}() inside "
                    f"{info.node.name}() forwards no deadline although "
                    f"{_fmt(used)} is in scope and {target.short}() "
                    f"reaches the transport boundary; pass timeout= "
                    f"through")


def _transport_reaching(graph) -> set[str]:
    """Functions containing a transport call, plus everything that can
    reach one through resolved project edges (reverse closure)."""
    base = set()
    for qualname, info in graph.functions.items():
        for node in _scope_local_nodes(info.node):
            if isinstance(node, ast.Call) and _is_transport_call(node):
                base.add(qualname)
                break
    reverse: dict[str, set[str]] = {}
    for caller, sites in graph.edges.items():
        for site in sites:
            reverse.setdefault(site.target, set()).add(caller)
    reaching = set(base)
    queue = list(base)
    while queue:
        for caller in reverse.get(queue.pop(), ()):
            if caller not in reaching:
                reaching.add(caller)
                queue.append(caller)
    return reaching


def _deadline_params(function: _FunctionDef) -> set[str]:
    args = function.args
    names = [a.arg for a in
             args.posonlyargs + args.args + args.kwonlyargs]
    return {name for name in names if name in DEADLINE_PARAMS}


def _scope_local_nodes(function: _FunctionDef) -> list[ast.AST]:
    """Every node in ``function`` excluding nested function bodies."""
    collected: list[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            collected.append(child)
            walk(child)

    walk(function)
    return collected


def _is_transport_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in TRANSPORT_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in TRANSPORT_ATTRS
    return False


def _forwards_deadline(call: ast.Call, params: set[str]) -> bool:
    for keyword in call.keywords:
        if keyword.arg in DEADLINE_PARAMS or keyword.arg is None:
            return True  # explicit timeout= (or **kwargs passthrough)
    for arg in call.args:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in params:
                return True
    return False


def _describe(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute):
        return f".{func.attr}(...)"
    return "(...)"


def _fmt(used: set[str]) -> str:
    return "/".join(sorted(used))
