"""Rule ``resource-lifecycle``: acquired connections must be disposed.

The PR 2 ``ninf_call_async`` bug -- a throwaway :class:`NinfClient`
whose connection pool leaked one TCP connection per call -- is a whole
class of bug: something that owns a socket is constructed and no path
ever closes it.  This checker tracks every *acquisition site* (calls
that mint an owned connection-like resource) and demands each one
reach a disposal.

Acquisition sites: calls to ``connect``/``create_connection``,
``Channel``/``FaultyChannel``, ``NinfClient``/``MetaClient``,
``ConnectionPool``, ``socket.socket(...)``, ``pool.checkout(...)``,
``listener.accept(...)`` and the client/pool ``self._connect(...)``
helpers.

A site is clean when the resulting value is

- used as a context manager (``with connect(...) as ch:``), or
- immediately transferred: returned, yielded, passed as an argument to
  another call (``Channel(sock)``, ``pool.checkin(ch)``), or stored
  into an attribute/container (``self._pool = ...``) whose owner takes
  over the close obligation;

or, when bound to a local name, that name is later released: a
``.close()``/``.stop()``/``.shutdown()`` call, a ``with`` statement, a
transfer as above -- anywhere in the function, including nested
functions and lambdas (deferred done-callbacks count).

Exception-safety: if the function *uses* the resource between
acquisition and release (any method call beyond the release set can
raise mid-flight), at least one release must live in an ``except``
handler, a ``finally`` block, or a nested function -- otherwise the
error path leaks and the checker says so.  Pure
acquire-then-transfer needs no handler.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.core import Checker, Finding, SourceModule

__all__ = ["ResourceLifecycleChecker"]

#: Bare-name calls that mint an owned resource.
ACQUIRING_NAMES = frozenset({
    "connect", "create_connection", "Channel", "FaultyChannel",
    "NinfClient", "MetaClient", "ConnectionPool",
})

#: ``obj.<attr>(...)`` calls that mint an owned resource.
ACQUIRING_ATTRS = frozenset({
    "socket", "create_connection", "checkout", "_connect",
})

#: ``.accept()`` mints a socket only on socket-like receivers -- the
#: IDL lexer's token ``accept()`` must not match.
_ACCEPT_RECEIVER_HINTS = ("listen", "sock", "server")

#: Method names that count as disposing of the resource.
RELEASE_METHODS = frozenset({"close", "stop", "shutdown"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


class ResourceLifecycleChecker(Checker):
    """Flag connection-like resources that never reach a disposal."""

    rule = "resource-lifecycle"
    description = ("every Channel/socket/client construction must reach "
                   "close()/with/transfer on all paths")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check every acquisition site in ``module``."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_acquisition(node):
                yield from self._check_site(module, node)

    # -- per-site ------------------------------------------------------------

    def _check_site(self, module: SourceModule,
                    call: ast.Call) -> Iterator[Finding]:
        parents = module.parents
        parent = parents.get(call)
        what = _call_label(call)

        # with Acq(...) as x:  -- the with statement owns the close.
        if isinstance(parent, ast.withitem):
            return
        # return/yield/await Acq(...), or Acq(...) as an argument of an
        # enclosing call -- ownership transfers out of this scope.
        if _transfers_immediately(call, parents):
            return
        # Acq(...).method(...) with the value never bound: the resource
        # is constructed, used once, and dropped -- nothing can close it.
        if isinstance(parent, ast.Attribute):
            yield self.finding(
                module, call,
                f"{what} is constructed and discarded without close(); "
                f"bind it (prefer 'with {what} as ...') so it can be "
                f"closed")
            return

        name = _binding_name(call, parents)
        if name is None:
            # Bare expression statement or an unsupported binding shape:
            # nothing holds the resource, so nothing can release it.
            yield self.finding(
                module, call,
                f"result of {what} is never bound or transferred, so the "
                f"underlying connection can never be closed")
            return

        function = _enclosing_function(call, parents)
        if function is None:
            return  # module-level singletons are out of scope
        releases = _find_releases(function, name, call)
        if not releases:
            yield self.finding(
                module, call,
                f"{what} bound to {name!r} is never closed, returned, or "
                f"transferred in this function (leaked on every path)")
            return
        if _has_risky_use(function, name, releases, call) and not any(
                kind in ("handler", "nested", "with")
                for kind, _node in releases):
            yield self.finding(
                module, call,
                f"{what} bound to {name!r} is used before release but "
                f"never closed on error paths; release it in a finally/"
                f"except block (or use 'with')")

    # (helper functions below are module-level for testability)


# -- classification helpers --------------------------------------------------

def _is_acquisition(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in ACQUIRING_NAMES
    if isinstance(func, ast.Attribute):
        if func.attr == "accept":
            receiver = _receiver_name(func.value)
            return receiver is not None and any(
                hint in receiver.lower()
                for hint in _ACCEPT_RECEIVER_HINTS)
        return func.attr in ACQUIRING_ATTRS
    return False


def _receiver_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of ``x`` / ``self.x`` / ``a.b.x``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_label(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute):
        return f"...{func.attr}(...)"
    return "acquisition"


def _transfers_immediately(call: ast.Call,
                           parents: dict[ast.AST, ast.AST]) -> bool:
    """True when the call's value flows straight out of the scope."""
    node: ast.AST = call
    parent = parents.get(node)
    while parent is not None:
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                               ast.Await)):
            return True
        if isinstance(parent, ast.Call) and node is not parent.func:
            return True  # argument of another call: ownership handed over
        if isinstance(parent, (ast.Tuple, ast.List, ast.Dict, ast.Set,
                               ast.IfExp, ast.BoolOp, ast.Starred,
                               ast.keyword)):
            node, parent = parent, parents.get(parent)
            continue
        if isinstance(parent, ast.Assign):
            # self.x = Acq(...) / container[k] = Acq(...): the owner
            # object takes over the close obligation.
            return all(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in parent.targets)
        return False
    return False


def _binding_name(call: ast.Call,
                  parents: dict[ast.AST, ast.AST]) -> Optional[str]:
    """The local name the acquisition is bound to, if any.

    Handles ``x = Acq(...)``, ``x: T = Acq(...)``, and the
    ``conn, addr = listener.accept()`` tuple form (first element).
    """
    parent = parents.get(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return target.id
        if (isinstance(target, ast.Tuple) and target.elts
                and isinstance(target.elts[0], ast.Name)):
            return target.elts[0].id
    if (isinstance(parent, ast.AnnAssign) and parent.value is call
            and isinstance(parent.target, ast.Name)):
        return parent.target.id
    if (isinstance(parent, ast.NamedExpr)
            and isinstance(parent.target, ast.Name)):
        return parent.target.id
    return None


def _enclosing_function(node: ast.AST, parents: dict[ast.AST, ast.AST]
                        ) -> Optional[_FunctionNode]:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            return current
        current = parents.get(current)
    return None


def _find_releases(function: _FunctionNode, name: str,
                   acquisition: ast.Call) -> list[tuple[str, ast.AST]]:
    """Every point where ``name`` is released or transferred.

    Returns ``(kind, node)`` pairs; ``kind`` is one of ``"plain"``
    (straight-line release), ``"handler"`` (inside except/finally),
    ``"nested"`` (inside a nested def/lambda -- a deferred callback),
    or ``"with"`` (the name governs a with statement).
    """
    releases: list[tuple[str, ast.AST]] = []
    body = function.body if not isinstance(function, ast.Lambda) \
        else [function.body]

    def classify(node: ast.AST, in_handler: bool,
                 in_nested: bool) -> Optional[str]:
        # Only code at or after the acquisition can be releasing *this*
        # binding; earlier same-named uses belong to a different value
        # (e.g. the pooled-reuse loop above ConnectionPool's dial).
        if getattr(node, "lineno", acquisition.lineno) < acquisition.lineno:
            return None
        if _is_release_node(node, name, acquisition):
            if in_nested:
                return "nested"
            if in_handler:
                return "handler"
            if isinstance(node, (ast.With, ast.AsyncWith)):
                return "with"
            return "plain"
        return None

    def walk(node: ast.AST, in_handler: bool, in_nested: bool) -> None:
        kind = classify(node, in_handler, in_nested)
        if kind is not None:
            releases.append((kind, node))
        if isinstance(node, ast.Try):
            for child in node.body + node.orelse:
                walk(child, in_handler, in_nested)
            for handler in node.handlers:
                for child in handler.body:
                    walk(child, True, in_nested)
            for child in node.finalbody:
                walk(child, True, in_nested)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                walk(child, in_handler, True)
            return
        if isinstance(node, ast.Lambda):
            walk(node.body, in_handler, True)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, in_handler, in_nested)

    for stmt in body:
        walk(stmt, False, False)
    return releases


def _is_release_node(node: ast.AST, name: str,
                     acquisition: ast.Call) -> bool:
    """Whether ``node`` disposes of / transfers the tracked ``name``."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return any(_mentions_name(item.context_expr, name)
                   for item in node.items)
    if isinstance(node, ast.Call):
        func = node.func
        # name.close() / name.stop() / name.shutdown()
        if (isinstance(func, ast.Attribute) and func.attr in RELEASE_METHODS
                and _mentions_name(func.value, name)):
            return True
        # any call taking the name as (part of) an argument -- checkin,
        # discard, Channel(sock), Thread(args=(ch,)), callbacks...
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if _mentions_name(arg, name):
                return True
        return False
    if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
        value = node.value
        return value is not None and _mentions_name(value, name)
    if isinstance(node, ast.Assign):
        if node.value is acquisition:
            return False  # the acquisition itself, not a transfer
        if _mentions_name(node.value, name):
            return any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in node.targets)
    return False


def _mentions_name(node: ast.AST, name: str) -> bool:
    # A lambda body referencing the name is a deferred use: the lambda
    # itself (passed around as a callback) carries the reference.
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


def _has_risky_use(function: _FunctionNode, name: str,
                   releases: list[tuple[str, ast.AST]],
                   acquisition: ast.Call) -> bool:
    """Any ``name.method(...)`` call that is not itself a release."""
    release_nodes = {id(node) for _kind, node in releases}
    for node in ast.walk(function):
        if (isinstance(node, ast.Call) and id(node) not in release_nodes
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and node.func.attr not in RELEASE_METHODS
                and node.lineno >= acquisition.lineno):
            return True
    return False
