"""``async-blocking-reachability``: no blocking call on the event loop.

One ``time.sleep`` -- or one sync ``Channel.request`` -- buried three
calls below a coroutine stalls the whole event loop: every pending
connection's latency inflates by the blocked interval, which corrupts
exactly the loop-lag and saturation measurements the bench harness
exists to take.  The intraprocedural rules (PR 4) can only flag what
they can see inside one function; this rule walks the project call
graph from every ``async def`` and flags any *path* to a blocking
primitive.

The registry has three layers:

- **project primitives** (:data:`BLOCKING_PROJECT`): the sync
  transport surface (``Channel``/``ConnectionPool``/``loopbridge``
  facades, sync framing, shm ring waits) and the lock-taking
  ``MetricsRegistry`` lookup methods.  Instrument *micro-ops*
  (``Counter.inc``, ``Gauge.set``, ``Histogram.observe``) are
  deliberately absent: they hold their lock for nanoseconds and are the
  sanctioned way to record metrics from a coroutine -- the rule forces
  the registry *lookups* off-loop, after which the cached instruments
  are cheap.
- **external primitives** (:data:`BLOCKING_EXTERNAL` exact names,
  :data:`BLOCKING_EXTERNAL_PREFIXES` for module families like
  ``subprocess.*``): ``time.sleep``, sync socket constructors,
  ``select.select``, the ``open`` builtin.
- **syntactic patterns**, for receivers the type inference cannot
  name: a non-awaited ``.acquire()``, ``.get()``/``.put()`` (without
  the ``_nowait`` suffix) on a receiver whose name contains ``queue``,
  ``pathlib``-style ``.read_text``/``.write_bytes`` file I/O, and a
  non-awaited ``.result()`` on a receiver named like a future.

Sanctioned bridges (:data:`SANCTIONED_BRIDGES` --
``loop.run_in_executor``, ``asyncio.to_thread``,
``asyncio.run_coroutine_threadsafe``, and the ``loopbridge`` facade
layer they power) need no special-casing in the traversal: a callable
*passed as an argument* never creates a call edge, so handing blocking
work to an executor is invisible to reachability -- which is precisely
the fix this rule pushes you toward.  The bridge names are still
exported so the docs and tests can pin the allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.core import Finding, Project, ProjectChecker

__all__ = [
    "AsyncBlockingReachabilityChecker",
    "BLOCKING_EXTERNAL",
    "BLOCKING_EXTERNAL_PREFIXES",
    "BLOCKING_PROJECT",
    "SANCTIONED_BRIDGES",
]

#: Project-internal blocking primitives: qualname -> what it blocks on.
BLOCKING_PROJECT: dict[str, str] = {
    "repro.transport.channel.Channel.send": "sync socket send",
    "repro.transport.channel.Channel.recv": "sync socket recv",
    "repro.transport.channel.Channel.request": "sync socket round-trip",
    "repro.transport.channel.Channel.send_error": "sync socket send",
    "repro.transport.channel.connect": "sync TCP connect",
    "repro.transport.pool.ConnectionPool.checkout": "sync pool checkout",
    "repro.transport.pool.ConnectionPool.checkin": "sync pool checkin",
    "repro.transport.pool.ConnectionPool.discard": "sync pool discard",
    "repro.transport.pool.ConnectionPool.lease": "sync pool lease",
    "repro.transport.pool.ConnectionPool.evict_idle": "sync pool sweep",
    "repro.transport.pool.ConnectionPool.close": "sync pool close",
    "repro.transport.loopbridge.LoopThread.run":
        "cross-thread future wait",
    "repro.transport.loopbridge.facade_connect": "sync bridge connect",
    "repro.transport.loopbridge.shared_loop": "bridge startup lock",
    "repro.transport.loopbridge.FacadeChannel.send": "sync bridge send",
    "repro.transport.loopbridge.FacadeChannel.recv": "sync bridge recv",
    "repro.transport.loopbridge.FacadeChannel.request":
        "sync bridge round-trip",
    "repro.transport.loopbridge.FacadeChannel.send_error":
        "sync bridge send",
    "repro.protocol.framing.send_frame": "sync frame write",
    "repro.protocol.framing.recv_frame": "sync frame read",
    "repro.transport.shm.ShmRing.write": "shm ring spin-wait",
    "repro.transport.shm.ShmRing.read_exact": "shm ring spin-wait",
    "repro.transport.shm.ShmRing._wait": "shm ring spin-wait",
    "repro.transport.shm.ShmTransport.send_frame": "shm frame write",
    "repro.transport.shm.ShmTransport.recv_frame": "shm frame read",
    "repro.transport.shm.ShmTransport.sendall": "shm ring spin-wait",
    "repro.transport.shm.negotiate": "sync shm handshake",
    "repro.obs.registry.MetricsRegistry.counter":
        "registry lock + instrument lookup",
    "repro.obs.registry.MetricsRegistry.gauge":
        "registry lock + instrument lookup",
    "repro.obs.registry.MetricsRegistry.histogram":
        "registry lock + instrument lookup",
    "repro.obs.registry.MetricsRegistry.snapshot":
        "registry-wide lock + full scrape",
    "repro.obs.registry.MetricsRegistry.render_prometheus":
        "registry-wide lock + full scrape",
}

#: Blocking stdlib/builtin calls by exact dotted name.
BLOCKING_EXTERNAL: frozenset[str] = frozenset({
    "time.sleep",
    "open",
    "os.system",
    "os.popen",
    "os.waitpid",
    "select.select",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "socket.socket",
})

#: Blocking stdlib families: any call under these module prefixes.
BLOCKING_EXTERNAL_PREFIXES: tuple[str, ...] = ("subprocess.",)

#: The sanctioned sync/async bridges.  Callables handed to these run
#: off-loop; because arguments never become call edges, the graph
#: already treats them as safe -- the set is exported for docs/tests.
SANCTIONED_BRIDGES: frozenset[str] = frozenset({
    "asyncio.to_thread",
    "asyncio.run_coroutine_threadsafe",
    "run_in_executor",
    "repro.transport.loopbridge.FacadeChannel",
    "repro.transport.loopbridge.LoopThread",
})

_FILE_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


class AsyncBlockingReachabilityChecker(ProjectChecker):
    """Flag every path from an ``async def`` to a blocking primitive."""

    rule = "async-blocking-reachability"
    description = ("no blocking primitive (sync transport, registry "
                   "lookup, time.sleep, sync queue/file I/O) may be "
                   "reachable from an async def")

    def check_project(self, project: Project) -> Iterator[Finding]:
        """BFS the call graph from every ``async def``; flag each
        blocking primitive whose shortest path is reachable, naming
        the path in the finding."""
        graph = project.callgraph
        roots = sorted(q for q, f in graph.functions.items() if f.is_async)
        pred: dict[str, Optional[str]] = {}
        origin: dict[str, str] = {}
        queue: list[str] = []
        for root in roots:
            if root not in pred:
                pred[root] = None
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            if current in BLOCKING_PROJECT:
                continue  # report at the edge, not inside the primitive
            for site in sorted(graph.callees(current),
                               key=lambda s: s.target):
                if site.target not in pred:
                    pred[site.target] = current
                    origin[site.target] = origin[current]
                    queue.append(site.target)

        for qualname in sorted(pred):
            if qualname in BLOCKING_PROJECT:
                continue
            info = graph.functions[qualname]
            chain = self._chain(graph, pred, qualname)
            root = graph.functions[origin[qualname]]
            for finding in self._check_function(graph, info, chain, root):
                yield finding

    def _chain(self, graph: CallGraph, pred: dict[str, Optional[str]],
               qualname: str) -> str:
        names = []
        current: Optional[str] = qualname
        while current is not None:
            names.append(graph.functions[current].short)
            current = pred[current]
        return " -> ".join(reversed(names))

    def _check_function(self, graph: CallGraph, info: FunctionInfo,
                        chain: str, root: FunctionInfo
                        ) -> Iterator[Finding]:
        via = (f"reachable from async def {root.short}() "
               f"via {chain}") if chain != root.short else \
              f"called directly inside async def {root.short}()"

        for site in graph.callees(info.qualname):
            desc = BLOCKING_PROJECT.get(site.target)
            if desc is None:
                continue
            target_short = graph.functions[site.target].short
            yield self.finding(
                info.module, site.node,
                f"blocking call {target_short}() ({desc}) {via}; move "
                f"it behind run_in_executor/to_thread or use the async "
                f"equivalent")

        for call in graph.external_calls(info.qualname):
            if not self._external_blocks(call.name):
                continue
            yield self.finding(
                info.module, call.node,
                f"blocking call {call.name}() {via}; use the asyncio "
                f"equivalent or a sanctioned bridge")

        yield from self._syntactic(info, via)

    @staticmethod
    def _external_blocks(name: str) -> bool:
        if name in BLOCKING_EXTERNAL:
            return True
        return any(name.startswith(prefix)
                   for prefix in BLOCKING_EXTERNAL_PREFIXES)

    def _syntactic(self, info: FunctionInfo, via: str) -> Iterator[Finding]:
        """Pattern heuristics for receivers type inference cannot name."""
        module = info.module
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            awaited = isinstance(module.parents.get(node), ast.Await)
            receiver = _receiver_name(node.func.value)
            if attr == "acquire" and not awaited:
                yield self.finding(
                    module, node,
                    f"non-awaited .acquire() {via}; a sync lock "
                    f"acquire stalls the event loop -- use asyncio "
                    f"primitives or run it off-loop")
            elif (attr in ("get", "put") and not awaited
                    and "queue" in receiver.lower()):
                yield self.finding(
                    module, node,
                    f"blocking queue .{attr}() {via}; use "
                    f".{attr}_nowait(), an asyncio queue, or a "
                    f"to_thread bridge")
            elif attr in _FILE_IO_ATTRS:
                yield self.finding(
                    module, node,
                    f"blocking file I/O .{attr}() {via}; wrap it in "
                    f"run_in_executor/to_thread")
            elif (attr == "result" and not awaited
                    and ("fut" in receiver.lower()
                         or "promise" in receiver.lower())):
                yield self.finding(
                    module, node,
                    f"blocking Future.result() {via}; await the "
                    f"future instead")


def _receiver_name(node: ast.expr) -> str:
    """The rightmost name of a receiver expression (for heuristics)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""
