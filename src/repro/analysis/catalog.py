"""Rule ``catalog-pinned-names``: instrumentation names come from the catalog.

Every metric the reproduction emits is declared once, in
``repro.obs.names`` (and listed in ``METRIC_NAMES``); every span name
lives in ``repro.obs.trace.SPAN_NAMES``.  The breakdown pipeline, the
Prometheus scrape config, and OBSERVABILITY.md all key off those
catalogs, so a metric registered under a freehand string is invisible
to all three.  This checker pins instrumentation sites to the catalog:

- a **metric site** is a ``.counter(...)`` / ``.gauge(...)`` /
  ``.histogram(...)`` call; its name argument must resolve to a value
  in ``METRIC_NAMES``;
- a **span site** is a ``.trace(...)`` / ``.span(...)`` /
  ``.record(...)`` call; its name argument must resolve to a value in
  ``SPAN_NAMES``.

"Resolve" covers the three forms the tree actually uses: a string
literal, a ``names.X`` attribute, or a bare ``SPAN_X``-style constant
imported from the catalog modules.  Dynamic name arguments (anything
else -- e.g. ``execution_trace.record(CallObservation(...))``, which is
not a span site at all) are skipped: the rule is about literals that
*look* pinned but are not.

The checker also subsumes the catalog half of the old docs-consistency
test: when it scans the catalog modules themselves and the repo's
OBSERVABILITY.md is available, every ``METRIC_NAMES`` entry must appear
in that doc and every ``SPAN_NAMES`` entry must appear backtick-quoted,
with findings anchored at the constant's assignment line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.core import Checker, Finding, SourceModule

__all__ = ["CatalogNamesChecker"]

#: ``registry.<attr>(name, ...)`` calls that register a metric.
METRIC_SITE_ATTRS = frozenset({"counter", "gauge", "histogram"})

#: ``tracer/trace.<attr>(name, ...)`` calls that open or record a span.
SPAN_SITE_ATTRS = frozenset({"trace", "span", "record"})


def _load_catalogs() -> tuple[dict[str, str], dict[str, str],
                              frozenset[str], frozenset[str]]:
    """(metric constants, span constants, metric values, span values)."""
    from repro.obs import names as names_mod
    from repro.obs import trace as trace_mod

    metric_consts = {
        attr: value for attr in dir(names_mod)
        if attr.isupper() and attr != "METRIC_NAMES"
        and isinstance(value := getattr(names_mod, attr), str)
    }
    span_consts = {
        attr: value for attr in dir(trace_mod)
        if attr.startswith("SPAN_") and attr != "SPAN_NAMES"
        and isinstance(value := getattr(trace_mod, attr), str)
    }
    return (metric_consts, span_consts,
            frozenset(names_mod.METRIC_NAMES),
            frozenset(trace_mod.SPAN_NAMES))


class CatalogNamesChecker(Checker):
    """Flag instrumentation-site names missing from the obs catalogs."""

    rule = "catalog-pinned-names"
    description = ("metric/span names at instrumentation sites must "
                   "exist in repro.obs.names / SPAN_NAMES (and be "
                   "documented in OBSERVABILITY.md)")

    def __init__(self, repo_root: Optional[Path] = None):
        self.repo_root = repo_root
        (self._metric_consts, self._span_consts,
         self._metric_values, self._span_values) = _load_catalogs()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check instrumentation sites, then the catalog's own docs."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
        yield from self._check_docs(module)

    # -- instrumentation sites -----------------------------------------------

    def _check_call(self, module: SourceModule,
                    call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in METRIC_SITE_ATTRS:
            kind, consts, values, catalog = (
                "metric", self._metric_consts, self._metric_values,
                "repro.obs.names.METRIC_NAMES")
        elif func.attr in SPAN_SITE_ATTRS:
            kind, consts, values, catalog = (
                "span", self._span_consts, self._span_values,
                "repro.obs.trace.SPAN_NAMES")
        else:
            return
        arg = _name_argument(call)
        if arg is None:
            return

        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in values:
                yield self.finding(
                    module, arg,
                    f"{kind} name {arg.value!r} is not in {catalog}; "
                    f"declare it in the catalog instead of inlining the "
                    f"string")
            return

        const = _constant_reference(arg)
        if const is None:
            return  # dynamic name -- out of scope for a literal check
        value = consts.get(const)
        if value is None:
            yield self.finding(
                module, arg,
                f"{const} is not a constant of the {kind} catalog "
                f"module; {kind} names must come from {catalog}")
        elif value not in values:
            yield self.finding(
                module, arg,
                f"{const} = {value!r} is not listed in {catalog}")

    # -- catalog <-> OBSERVABILITY.md ----------------------------------------

    def _check_docs(self, module: SourceModule) -> Iterator[Finding]:
        """The docs half, run only over the catalog modules themselves."""
        posix = module.path.as_posix()
        if posix.endswith("repro/obs/names.py"):
            values, quote = self._metric_values, False
        elif posix.endswith("repro/obs/trace.py"):
            values, quote = self._span_values, True
        else:
            return
        doc_text = self._observability_text()
        if doc_text is None:
            return
        for stmt in module.tree.body:
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                continue
            value = stmt.value.value
            if value not in values:
                continue
            needle = f"`{value}`" if quote else value
            if needle not in doc_text:
                label = "span" if quote else "metric"
                yield self.finding(
                    module, stmt,
                    f"{label} {value!r} is in the catalog but missing "
                    f"from OBSERVABILITY.md; document it there")

    def _observability_text(self) -> Optional[str]:
        if self.repo_root is None:
            return None
        doc = self.repo_root / "OBSERVABILITY.md"
        if not doc.is_file():
            return None
        return doc.read_text(encoding="utf-8")


def _name_argument(call: ast.Call) -> Optional[ast.expr]:
    """The name argument of an instrumentation call, if present."""
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    if call.args:
        return call.args[0]
    return None


def _constant_reference(arg: ast.expr) -> Optional[str]:
    """``names.X`` / bare ``SPAN_X`` -> ``"X"``; dynamic -> None."""
    if (isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name)
            and arg.attr.isupper()):
        return arg.attr
    if isinstance(arg, ast.Name) and arg.id.isupper():
        return arg.id
    return None
