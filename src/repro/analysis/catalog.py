"""Rule ``catalog-pinned-names``: instrumentation names come from the catalog.

Every metric the reproduction emits is declared once, in
``repro.obs.names`` (and listed in ``METRIC_NAMES``); every span name
lives in ``repro.obs.trace.SPAN_NAMES``.  The breakdown pipeline, the
Prometheus scrape config, and OBSERVABILITY.md all key off those
catalogs, so a metric registered under a freehand string is invisible
to all three.  This checker pins instrumentation sites to the catalog:

- a **metric site** is a ``.counter(...)`` / ``.gauge(...)`` /
  ``.histogram(...)`` call; its name argument must resolve to a value
  in ``METRIC_NAMES``;
- a **span site** is a ``.trace(...)`` / ``.span(...)`` /
  ``.record(...)`` call; its name argument must resolve to a value in
  ``SPAN_NAMES``.

"Resolve" covers the three forms the tree actually uses: a string
literal, a ``names.X`` attribute, or a bare ``SPAN_X``-style constant
imported from the catalog modules.  Dynamic name arguments (anything
else -- e.g. ``execution_trace.record(CallObservation(...))``, which is
not a span site at all) are skipped: the rule is about literals that
*look* pinned but are not.

The checker also subsumes the catalog half of the old docs-consistency
test: when it scans the catalog modules themselves and the repo's
OBSERVABILITY.md is available, every ``METRIC_NAMES`` entry must appear
in that doc and every ``SPAN_NAMES`` entry must appear backtick-quoted,
with findings anchored at the constant's assignment line.

The wire protocol gets the same treatment: scanning
``repro/protocol/messages.py`` with PROTOCOL.md available pins every
``MessageType`` member to a row of the doc's op-code table (same name,
same number) and ``PROTOCOL_VERSION`` to the doc's version statement,
anchored at the member's assignment line.  (The exact two-way
comparison -- no stale doc rows either -- lives in
``tests/test_docs_consistency.py``; the lint half exists so editing the
enum without the doc fails ``ninf-lint`` too, where the finding points
at the line that changed.)
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.core import Checker, Finding, SourceModule

__all__ = ["CatalogNamesChecker"]

#: A PROTOCOL.md op-code table row: ``| 5 | `CALL` | ...``.
_OPCODE_ROW = re.compile(r"^\|\s*(\d+)\s*\|\s*`([A-Z_]+)`\s*\|", re.M)

#: PROTOCOL.md's canonical version statement.
_VERSION_STATEMENT = re.compile(r"current protocol version is \*\*(\d+)\*\*")

#: ``registry.<attr>(name, ...)`` calls that register a metric.
METRIC_SITE_ATTRS = frozenset({"counter", "gauge", "histogram"})

#: ``tracer/trace.<attr>(name, ...)`` calls that open or record a span.
SPAN_SITE_ATTRS = frozenset({"trace", "span", "record"})


def _load_catalogs() -> tuple[dict[str, str], dict[str, str],
                              frozenset[str], frozenset[str]]:
    """(metric constants, span constants, metric values, span values)."""
    from repro.obs import names as names_mod
    from repro.obs import trace as trace_mod

    metric_consts = {
        attr: value for attr in dir(names_mod)
        if attr.isupper() and attr != "METRIC_NAMES"
        and isinstance(value := getattr(names_mod, attr), str)
    }
    span_consts = {
        attr: value for attr in dir(trace_mod)
        if attr.startswith("SPAN_") and attr != "SPAN_NAMES"
        and isinstance(value := getattr(trace_mod, attr), str)
    }
    return (metric_consts, span_consts,
            frozenset(names_mod.METRIC_NAMES),
            frozenset(trace_mod.SPAN_NAMES))


class CatalogNamesChecker(Checker):
    """Flag instrumentation-site names missing from the obs catalogs."""

    rule = "catalog-pinned-names"
    description = ("metric/span names at instrumentation sites must "
                   "exist in repro.obs.names / SPAN_NAMES (and be "
                   "documented in OBSERVABILITY.md)")

    def __init__(self, repo_root: Optional[Path] = None):
        self.repo_root = repo_root
        (self._metric_consts, self._span_consts,
         self._metric_values, self._span_values) = _load_catalogs()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check instrumentation sites, then the catalog's own docs."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
        yield from self._check_docs(module)
        yield from self._check_protocol_doc(module)

    # -- instrumentation sites -----------------------------------------------

    def _check_call(self, module: SourceModule,
                    call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in METRIC_SITE_ATTRS:
            kind, consts, values, catalog = (
                "metric", self._metric_consts, self._metric_values,
                "repro.obs.names.METRIC_NAMES")
        elif func.attr in SPAN_SITE_ATTRS:
            kind, consts, values, catalog = (
                "span", self._span_consts, self._span_values,
                "repro.obs.trace.SPAN_NAMES")
        else:
            return
        arg = _name_argument(call)
        if arg is None:
            return

        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in values:
                yield self.finding(
                    module, arg,
                    f"{kind} name {arg.value!r} is not in {catalog}; "
                    f"declare it in the catalog instead of inlining the "
                    f"string")
            return

        const = _constant_reference(arg)
        if const is None:
            return  # dynamic name -- out of scope for a literal check
        value = consts.get(const)
        if value is None:
            yield self.finding(
                module, arg,
                f"{const} is not a constant of the {kind} catalog "
                f"module; {kind} names must come from {catalog}")
        elif value not in values:
            yield self.finding(
                module, arg,
                f"{const} = {value!r} is not listed in {catalog}")

    # -- catalog <-> OBSERVABILITY.md ----------------------------------------

    def _check_docs(self, module: SourceModule) -> Iterator[Finding]:
        """The docs half, run only over the catalog modules themselves."""
        posix = module.path.as_posix()
        if posix.endswith("repro/obs/names.py"):
            values, quote = self._metric_values, False
        elif posix.endswith("repro/obs/trace.py"):
            values, quote = self._span_values, True
        else:
            return
        doc_text = self._observability_text()
        if doc_text is None:
            return
        for stmt in module.tree.body:
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                continue
            value = stmt.value.value
            if value not in values:
                continue
            needle = f"`{value}`" if quote else value
            if needle not in doc_text:
                label = "span" if quote else "metric"
                yield self.finding(
                    module, stmt,
                    f"{label} {value!r} is in the catalog but missing "
                    f"from OBSERVABILITY.md; document it there")

    def _observability_text(self) -> Optional[str]:
        return self._doc_text("OBSERVABILITY.md")

    def _doc_text(self, name: str) -> Optional[str]:
        if self.repo_root is None:
            return None
        doc = self.repo_root / name
        if not doc.is_file():
            return None
        return doc.read_text(encoding="utf-8")

    # -- MessageType / PROTOCOL_VERSION <-> PROTOCOL.md ----------------------

    def _check_protocol_doc(self, module: SourceModule) -> Iterator[Finding]:
        """The wire-spec half, run only over ``protocol/messages.py``.

        Every ``MessageType`` member must appear in PROTOCOL.md's
        op-code table with the same number, and the doc's version
        statement must agree with ``PROTOCOL_VERSION``.
        """
        if not module.path.as_posix().endswith("repro/protocol/messages.py"):
            return
        doc_text = self._doc_text("PROTOCOL.md")
        if doc_text is None:
            return
        documented = {name: int(code) for code, name in
                      _OPCODE_ROW.findall(doc_text)}
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name == "MessageType"):
                yield from self._check_opcodes(module, node, documented)
            elif (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "PROTOCOL_VERSION"
                            for t in node.targets)
                    and isinstance(node.value, ast.Constant)):
                match = _VERSION_STATEMENT.search(doc_text)
                if match is None:
                    yield self.finding(
                        module, node,
                        "PROTOCOL.md has no 'current protocol version "
                        "is **N**' statement; the canonical spec must "
                        "state the version")
                elif int(match.group(1)) != node.value.value:
                    yield self.finding(
                        module, node,
                        f"PROTOCOL_VERSION = {node.value.value} but "
                        f"PROTOCOL.md says version {match.group(1)}; "
                        f"update the doc's version statement and "
                        f"history")

    def _check_opcodes(self, module: SourceModule, enum_def: ast.ClassDef,
                       documented: dict[str, int]) -> Iterator[Finding]:
        for stmt in enum_def.body:
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)):
                continue
            name = stmt.targets[0].id
            code = stmt.value.value
            if name not in documented:
                yield self.finding(
                    module, stmt,
                    f"op {name} ({code}) is missing from PROTOCOL.md's "
                    f"op-code table; the wire spec must list every "
                    f"MessageType")
            elif documented[name] != code:
                yield self.finding(
                    module, stmt,
                    f"op {name} is {code} in code but "
                    f"{documented[name]} in PROTOCOL.md; op codes are "
                    f"wire-stable, so one side is lying")


def _name_argument(call: ast.Call) -> Optional[ast.expr]:
    """The name argument of an instrumentation call, if present."""
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    if call.args:
        return call.args[0]
    return None


def _constant_reference(arg: ast.expr) -> Optional[str]:
    """``names.X`` / bare ``SPAN_X`` -> ``"X"``; dynamic -> None."""
    if (isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name)
            and arg.attr.isupper()):
        return arg.attr
    if isinstance(arg, ast.Name) and arg.id.isupper():
        return arg.id
    return None
