"""``python -m repro.analysis`` == ``ninf-lint``."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
