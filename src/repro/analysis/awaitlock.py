"""Rule ``await-under-lock``: never ``await`` holding a threading lock.

The asyncio core (DESIGN.md §3.6) shares state with executor threads
through plain ``threading.Lock``s -- the retry policy's counters, the
fault plan's draw log, pool bookkeeping.  Taking one of those locks
from a coroutine is fine *as long as the critical section never yields
to the event loop*: an ``await`` while the lock is held parks the
coroutine mid-section, and the next thread (or coroutine on another
loop) that touches the lock blocks for an unbounded time -- in the
worst case on the very loop that must run to release it.  That is a
deadlock the type system cannot see and tests rarely provoke.

What counts as a threading lock:

- ``self.X`` assigned ``threading.Lock()`` / ``RLock()`` /
  ``Condition()`` / ``Semaphore()`` anywhere in the class (the
  project's constructor convention), plus every lock declared for the
  class (or an AST base) in the ``lock-discipline`` registry
  :data:`repro.analysis.locks.GUARDED_BY`;
- a module-level name assigned one of the same constructors.

What counts as yielding inside the ``with`` block: ``await ...``,
``async for`` and ``async with`` -- each suspends the coroutine with
the lock held.  ``asyncio`` locks are exempt by construction: they are
entered with ``async with``, which this rule never treats as a lock
acquisition.  Nested ``def``/``async def`` bodies are separate scopes:
a closure created under the lock runs later, without it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.locks import GUARDED_BY

__all__ = ["AwaitUnderLockChecker"]

#: ``threading`` constructors whose result must never be held across a
#: suspension point.
_LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})


def _lock_constructor(value: ast.AST) -> bool:
    """True for ``threading.Lock()``-shaped calls (any constructor in
    :data:`_LOCK_CONSTRUCTORS`, plain or ``threading.``-qualified)."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return (isinstance(func.value, ast.Name)
                and func.value.id == "threading"
                and func.attr in _LOCK_CONSTRUCTORS)
    if isinstance(func, ast.Name):
        return func.id in _LOCK_CONSTRUCTORS
    return False


class AwaitUnderLockChecker(Checker):
    """Flag suspension points inside ``with self.<threading lock>:``."""

    rule = "await-under-lock"
    description = ("coroutines must not await (or enter async for/with) "
                   "while holding a threading.Lock")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check every ``async def`` in ``module``, however nested."""
        module_locks = _module_level_locks(module.tree)
        yield from self._walk(module, module.tree.body, frozenset(),
                              module_locks, held=None)

    # -- the walk ------------------------------------------------------------

    def _walk(self, module: SourceModule, nodes: Sequence[ast.AST],
              attr_locks: frozenset[str], module_locks: frozenset[str],
              held: Optional[str]) -> Iterator[Finding]:
        for node in nodes:
            yield from self._visit(module, node, attr_locks, module_locks,
                                   held)

    def _visit(self, module: SourceModule, node: ast.AST,
               attr_locks: frozenset[str], module_locks: frozenset[str],
               held: Optional[str]) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            # Methods see the class's own locks, never an outer section.
            yield from self._walk(module, node.body, _class_locks(node),
                                  module_locks, held=None)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested scope runs outside the enclosing critical section
            # (a closure created under the lock executes later), so the
            # held state resets; its body may still hold locks of its
            # own, and may nest further coroutines.
            yield from self._walk(module, node.body, attr_locks,
                                  module_locks, held=None)
            return
        if isinstance(node, ast.Lambda):
            return  # cannot contain await or a with statement
        if held is not None and isinstance(
                node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            what = {"Await": "await", "AsyncFor": "async for",
                    "AsyncWith": "async with"}[type(node).__name__]
            yield self.finding(
                module, node,
                f"{what} while holding threading lock {held}: the "
                f"coroutine suspends mid-critical-section and every "
                f"other holder blocks (move the await outside the "
                f"with block)")
            # Keep walking: an async-for/with body can hide more.
        if isinstance(node, ast.With):
            acquired = held
            for item in node.items:
                lock = _lock_expr(item.context_expr, attr_locks,
                                  module_locks)
                if lock is not None:
                    acquired = lock
            yield from self._walk(module, node.body, attr_locks,
                                  module_locks, acquired)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child, attr_locks, module_locks,
                                   held)


def _class_locks(classdef: ast.ClassDef) -> frozenset[str]:
    """Threading-lock attribute names of ``classdef``.

    Union of ``self.X = threading.Lock()`` assignments found in any
    method and the locks registered for the class or its AST bases in
    :data:`GUARDED_BY`.
    """
    locks: set[str] = set()
    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign) and _lock_constructor(node.value):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    locks.add(target.attr)
    names = [classdef.name] + [
        base.id if isinstance(base, ast.Name) else base.attr
        for base in classdef.bases
        if isinstance(base, (ast.Name, ast.Attribute))]
    for name in names:
        for spec in GUARDED_BY.get(name, ()):
            locks.add(spec.lock)
    return frozenset(locks)


def _module_level_locks(tree: ast.Module) -> frozenset[str]:
    """Module-global names bound to ``threading.Lock()``-shaped calls."""
    locks: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _lock_constructor(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return frozenset(locks)


def _lock_expr(expr: ast.AST, attr_locks: frozenset[str],
               module_locks: frozenset[str]) -> Optional[str]:
    """``self.<lock>`` or a module-level lock name; else ``None``."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in attr_locks):
        return f"self.{expr.attr}"
    if isinstance(expr, ast.Name) and expr.id in module_locks:
        return expr.id
    return None
