"""The ``ninf-lint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 -- clean (or all findings baselined), 1 -- new findings,
2 -- usage error.  ``--format json`` emits a machine-readable report
for CI artefacts; ``--format sarif`` emits a SARIF 2.1.0 log suitable
for code-scanning upload; ``--write-baseline`` records the current
findings so
only regressions fail thereafter (the repo itself carries no baseline:
every true positive gets fixed, not recorded -- see ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import all_checkers
from repro.analysis.core import (
    Finding,
    load_baseline,
    run_checks,
    write_baseline,
)

__all__ = ["build_parser", "find_repo_root", "main", "to_sarif"]


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor carrying ``pyproject.toml`` (the repo root)."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    """The ``ninf-lint`` argument parser (kept separate for tests)."""
    parser = argparse.ArgumentParser(
        prog="ninf-lint",
        description="Project-aware static checks for the Ninf "
                    "reproduction (see ANALYSIS.md).")
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to check (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text); sarif emits a SARIF 2.1.0 "
             "log for code-scanning upload")
    parser.add_argument(
        "--rules", metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path,
        help="suppress findings recorded in this baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into --baseline and exit 0")
    parser.add_argument(
        "--root", metavar="DIR", type=Path,
        help="repo root for relative paths and doc cross-checks "
             "(default: nearest ancestor with pyproject.toml)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run ``ninf-lint``; returns the process exit code (0/1/2)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    root = args.root.resolve() if args.root else find_repo_root()
    checkers = all_checkers(repo_root=root)
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.rule}: {checker.description}")
        return 0
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",")
                  if part.strip()}
        known = {checker.rule for checker in checkers}
        unknown = wanted - known
        if unknown:
            print(f"ninf-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        checkers = tuple(c for c in checkers if c.rule in wanted)
    if args.write_baseline and args.baseline is None:
        print("ninf-lint: --write-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"ninf-lint: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2

    findings = run_checks(paths, checkers, root=root)

    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        print(f"ninf-lint: wrote {count} fingerprint(s) to {args.baseline}")
        return 0
    if args.baseline is not None and args.baseline.is_file():
        known_prints = load_baseline(args.baseline)
        findings = [f for f in findings
                    if f.fingerprint() not in known_prints]

    _report(findings, args.format, checkers)
    return 1 if findings else 0


def _report(findings: Sequence[Finding], fmt: str,
            checkers: Sequence = ()) -> None:
    if fmt == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
        }
        print(json.dumps(payload, indent=2))
        return
    if fmt == "sarif":
        print(json.dumps(to_sarif(findings, checkers), indent=2))
        return
    for finding in findings:
        print(finding.render())
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"ninf-lint: {len(findings)} {noun}")


def to_sarif(findings: Sequence[Finding],
             checkers: Sequence = ()) -> dict:
    """Render ``findings`` as a SARIF 2.1.0 log (one run, one tool).

    The rule catalog comes from ``checkers`` so a clean run still
    advertises which rules executed; findings for rules outside the
    catalog (e.g. ``parse-error``) get a bare descriptor on the fly.
    """
    rules = {checker.rule: {
        "id": checker.rule,
        "shortDescription": {"text": checker.description},
        "helpUri": "https://github.com/ninf-repro/ANALYSIS.md",
    } for checker in checkers}
    results = []
    for finding in findings:
        if finding.rule not in rules:
            rules[finding.rule] = {"id": finding.rule}
        message = finding.message
        if finding.symbol:
            message = f"{message} [{finding.symbol}]"
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": message},
            "partialFingerprints": {
                "ninfLintFingerprint/v1": finding.fingerprint(),
            },
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "ninf-lint",
                "informationUri": "https://github.com/ninf-repro",
                "rules": sorted(rules.values(),
                                key=lambda rule: rule["id"]),
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
